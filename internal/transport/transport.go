// Package transport moves signed protocol messages over real TCP
// connections: the deployment path under the public dissent SDK.
// Frames are length-prefixed encoded Messages, optionally tagged with
// a 32-byte session ID so one listener can carry many concurrent
// Dissent groups; identity and integrity come from the protocol-level
// signatures, so connections need no additional handshake. The package
// knows nothing about engines — it hands every inbound message to a
// per-session callback and exposes SendSession for outbound envelopes;
// the SDK's Session owns the engine loop and timers.
//
// Wire compatibility: the original single-session format is a 4-byte
// big-endian length followed by the encoded message. Tagged frames set
// the top bit of the length word and insert the session ID between the
// length and the body. Because maxFrame is far below 1<<31, a legacy
// reader confronted with a tagged frame fails immediately with a clear
// "frame size out of range" error instead of desynchronizing, and a
// new reader accepts both formats.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dissent/internal/core"
	"dissent/internal/group"
)

// maxFrame bounds a single message frame (a 128 KiB bulk slot plus
// generous protocol overhead).
const maxFrame = 64 << 20

// frameTagged marks a session-tagged frame: the top bit of the length
// word. maxFrame < 1<<31, so the bit is never part of a legacy length.
const frameTagged = 1 << 31

// SessionID tags frames with the group session they belong to. The SDK
// uses the group definition's self-certifying ID, so the tag needs no
// allocation protocol. The zero value (NoSession) selects the legacy
// untagged wire format.
type SessionID = [32]byte

// NoSession is the zero session: frames are written untagged and
// inbound untagged frames route to it.
var NoSession SessionID

// Roster maps node IDs to dialable addresses.
type Roster map[group.NodeID]string

// Mesh is one process's view of the group fabric: a single listener
// accepting inbound connections for every bound session, plus lazily
// dialed outbound connections cached by address and shared across
// sessions. Inbound messages are decoded and routed by their frame's
// session tag to that session's recv callback (from per-connection
// goroutines; the caller serializes). Soft I/O errors and frames for
// unbound sessions go to onError.
type Mesh struct {
	onError func(error)

	ln net.Listener

	mu       sync.Mutex
	sessions map[SessionID]*meshSession
	conns    map[string]*lockedConn // keyed by dial address
	inbound  []net.Conn
	closed   bool

	// Connection-health accounting (Stats). The counters are atomics
	// and the peer map has its own leaf lock, so the dial and writer
	// goroutines can record failures while holding lockedConn.mu without
	// ordering against the mesh lock above.
	dialFailures  atomic.Uint64
	framesDropped atomic.Uint64
	peersMu       sync.Mutex
	peers         map[string]*peerEntry

	wg sync.WaitGroup
}

// Peer connection states reported by Stats.
const (
	PeerDialing   = "dialing"
	PeerConnected = "connected"
	PeerFailed    = "failed"
)

// peerEntry tracks one outbound peer address's connection health across
// redials. Guarded by Mesh.peersMu.
type peerEntry struct {
	dials   uint64
	state   string
	lastErr string
}

// PeerStats is one outbound peer's connection health.
type PeerStats struct {
	// Addr is the peer's dial address.
	Addr string `json:"addr"`
	// State is "dialing", "connected", or "failed" (the last dial or
	// write on the connection errored; the next send re-dials).
	State string `json:"state"`
	// Dials counts connection attempts to this address, including
	// retries and re-dials after failure.
	Dials uint64 `json:"dials"`
	// LastError is the most recent dial or write error, if any.
	LastError string `json:"last_error,omitempty"`
}

// Stats is a point-in-time snapshot of the mesh's transport health.
type Stats struct {
	// DialFailures counts failed outbound dial attempts (each retry of
	// a backing-off dial counts).
	DialFailures uint64 `json:"dial_failures"`
	// FramesDropped counts outbound frames lost to dial or write
	// failures.
	FramesDropped uint64 `json:"frames_dropped"`
	// Peers holds per-address connection health, sorted by address.
	Peers []PeerStats `json:"peers,omitempty"`
}

// Stats returns the mesh's transport-health snapshot: cumulative dial
// failures and dropped frames, plus per-peer connection state.
func (m *Mesh) Stats() Stats {
	s := Stats{
		DialFailures:  m.dialFailures.Load(),
		FramesDropped: m.framesDropped.Load(),
	}
	m.peersMu.Lock()
	for addr, pe := range m.peers {
		s.Peers = append(s.Peers, PeerStats{
			Addr: addr, State: pe.state, Dials: pe.dials, LastError: pe.lastErr,
		})
	}
	m.peersMu.Unlock()
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].Addr < s.Peers[j].Addr })
	return s
}

// notePeer folds one connection-health observation into the peer map.
// dialed increments the attempt count; state and errStr (when
// non-empty) overwrite the peer's current health.
func (m *Mesh) notePeer(addr string, dialed bool, state, errStr string) {
	m.peersMu.Lock()
	defer m.peersMu.Unlock()
	if m.peers == nil {
		m.peers = make(map[string]*peerEntry)
	}
	pe := m.peers[addr]
	if pe == nil {
		pe = &peerEntry{}
		m.peers[addr] = pe
	}
	if dialed {
		pe.dials++
	}
	if state != "" {
		pe.state = state
	}
	if errStr != "" {
		pe.lastErr = errStr
	}
}

// meshSession is one bound session: its roster and inbound sink.
type meshSession struct {
	roster Roster
	recv   func(*core.Message)
}

// NewMesh binds addr with no sessions attached yet; Bind adds them.
// onError observes soft transport errors (may be nil).
func NewMesh(addr string, onError func(error)) (*Mesh, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		onError:  onError,
		ln:       ln,
		sessions: make(map[SessionID]*meshSession),
		conns:    make(map[string]*lockedConn),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// ListenMesh binds addr and routes inbound messages to recv — the
// single-session form, kept for callers that predate session routing.
// It is NewMesh plus a NoSession bind: frames go out untagged, exactly
// as before the session tag existed.
func ListenMesh(addr string, roster Roster, recv func(*core.Message), onError func(error)) (*Mesh, error) {
	m, err := NewMesh(addr, onError)
	if err != nil {
		return nil, err
	}
	if err := m.Bind(NoSession, roster, recv); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// Bind attaches a session to the mesh: outbound SendSession(sid, ...)
// resolves addresses through roster, and inbound frames tagged sid are
// handed to recv. Binding NoSession additionally captures legacy
// untagged traffic. The roster is copied, so the caller's map is not
// read afterwards; AddPeer extends the bound copy for members admitted
// mid-session.
func (m *Mesh) Bind(sid SessionID, roster Roster, recv func(*core.Message)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("transport: mesh closed")
	}
	if _, dup := m.sessions[sid]; dup {
		return fmt.Errorf("transport: session %x already bound", sid[:4])
	}
	owned := make(Roster, len(roster))
	for id, addr := range roster {
		owned[id] = addr
	}
	m.sessions[sid] = &meshSession{roster: owned, recv: recv}
	return nil
}

// AddPeer registers (or updates) a member's dialable address in a bound
// session's roster — the mid-session attach path for members admitted
// by a roster update after the session was bound.
func (m *Mesh) AddPeer(sid SessionID, id group.NodeID, addr string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms := m.sessions[sid]
	if ms == nil {
		return fmt.Errorf("transport: session %x not bound", sid[:4])
	}
	ms.roster[id] = addr
	return nil
}

// Unbind detaches a session; its inbound frames are dropped (reported
// to onError) from then on. Connections stay cached — they are shared
// with other sessions.
func (m *Mesh) Unbind(sid SessionID) {
	m.mu.Lock()
	delete(m.sessions, sid)
	m.mu.Unlock()
}

// Addr returns the bound listen address.
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// Close shuts the mesh down: the listener, every connection, and all
// reader goroutines.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for _, c := range m.conns {
		c.close()
	}
	for _, c := range m.inbound {
		c.Close()
	}
	m.mu.Unlock()
	err := m.ln.Close()
	m.wg.Wait()
	return err
}

func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.inbound = append(m.inbound, conn)
		m.mu.Unlock()
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.readLoop(conn)
		}()
	}
}

func (m *Mesh) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		sid, tagged, msg, err := ReadFrameSession(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !m.isClosed() {
				m.reportError(fmt.Errorf("transport: read: %w", err))
			}
			return
		}
		m.route(sid, tagged, msg)
	}
}

// route hands one inbound message to its session. Tagged frames match
// exactly — a message can never leak into another session. Untagged
// (legacy) frames go to the NoSession bind or, when exactly one
// session is bound, to it, so an old single-session peer still reaches
// a new single-session process.
func (m *Mesh) route(sid SessionID, tagged bool, msg *core.Message) {
	m.mu.Lock()
	ms := m.sessions[sid]
	if ms == nil && !tagged && len(m.sessions) == 1 {
		for _, only := range m.sessions {
			ms = only
		}
	}
	m.mu.Unlock()
	if ms == nil {
		m.reportError(fmt.Errorf("transport: dropping %s frame for unbound session %x", msg.Type, sid[:4]))
		return
	}
	ms.recv(msg)
}

func (m *Mesh) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Send transmits one message on the NoSession (legacy single-session)
// bind.
func (m *Mesh) Send(to group.NodeID, msg *core.Message) error {
	return m.SendSession(NoSession, to, msg)
}

// SendSession transmits one message within a bound session, dialing
// (with retry) as needed; a stale cached connection is dropped and
// redialed once. The frame carries the session tag unless sid is
// NoSession.
func (m *Mesh) SendSession(sid SessionID, to group.NodeID, msg *core.Message) error {
	m.mu.Lock()
	ms := m.sessions[sid]
	closed := m.closed
	var addr string
	var ok bool
	if ms != nil {
		addr, ok = ms.roster[to] // under mu: AddPeer may extend the roster
	}
	m.mu.Unlock()
	if closed {
		return errors.New("transport: mesh closed")
	}
	if ms == nil {
		return fmt.Errorf("transport: session %x not bound", sid[:4])
	}
	if !ok {
		return fmt.Errorf("transport: no address for node %s", to)
	}
	frame := encodeFrame(sid, msg)
	conn, err := m.conn(addr)
	if err != nil {
		return err
	}
	if err := conn.enqueue(frame); err != nil {
		m.dropConn(addr)
		conn, err2 := m.conn(addr)
		if err2 != nil {
			return err2
		}
		return conn.enqueue(frame)
	}
	return nil
}

func (m *Mesh) dropConn(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.conns[addr]; ok {
		c.close()
		delete(m.conns, addr)
	}
}

func (m *Mesh) conn(addr string) (*lockedConn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.conns[addr]; ok {
		return c, nil
	}
	// Dialing happens on the connection's own goroutine (with retries
	// for peers that have not started listening yet); frames enqueue
	// immediately and flush once connected. A member that died must not
	// stall the caller's engine dispatch loop — that would let one dead
	// client slow every round for everyone else.
	lc := newDialingConn(func() (net.Conn, error) {
		var conn net.Conn
		var err error
		for attempt := 0; attempt < 10; attempt++ {
			m.notePeer(addr, true, PeerDialing, "")
			conn, err = net.DialTimeout("tcp", addr, 2*time.Second)
			if err == nil {
				m.notePeer(addr, false, PeerConnected, "")
				return conn, nil
			}
			m.dialFailures.Add(1)
			m.notePeer(addr, false, PeerDialing, err.Error())
			time.Sleep(time.Duration(50*(attempt+1)) * time.Millisecond)
		}
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}, m.reportError, func(dropped int, err error) {
		m.framesDropped.Add(uint64(dropped))
		m.notePeer(addr, false, PeerFailed, err.Error())
	})
	m.conns[addr] = lc
	return lc, nil
}

func (m *Mesh) reportError(err error) {
	if m.onError != nil {
		m.onError(err)
	}
}

// lockedConn serializes frame writes through a dedicated writer
// goroutine: sends from different goroutines would otherwise
// interleave partial frames, and synchronous writes from within read
// handlers could form distributed write-deadlocks when every node's
// TCP buffers fill simultaneously. The connection may still be dialing
// when frames enqueue; they flush once the dial completes, and a
// failed dial drops the queue (reported) and marks the conn dead so
// the next send re-dials.
type lockedConn struct {
	mu      sync.Mutex
	cond    *sync.Cond
	c       net.Conn // nil while dialing
	queue   [][]byte
	closed  bool
	err     error
	onError func(error)
	// onFail observes terminal connection failures (dial exhausted or
	// write error) with the number of queued frames lost; may be nil.
	// Called with lc.mu held — implementations must only touch leaf
	// state (atomics, dedicated leaf locks).
	onFail func(dropped int, err error)
}

// newDialingConn creates a connection that dials in the background.
func newDialingConn(dial func() (net.Conn, error), onError func(error), onFail func(dropped int, err error)) *lockedConn {
	lc := &lockedConn{onError: onError, onFail: onFail}
	lc.cond = sync.NewCond(&lc.mu)
	go func() {
		conn, err := dial()
		lc.mu.Lock()
		if lc.closed {
			lc.mu.Unlock()
			if conn != nil {
				conn.Close()
			}
			return
		}
		if err != nil {
			lc.failLocked(err)
			lc.mu.Unlock()
			return
		}
		lc.c = conn
		lc.mu.Unlock()
		lc.writeLoop()
	}()
	return lc
}

// failLocked marks the connection dead, drops any queued frames, and
// reports the loss. Callers hold lc.mu.
func (lc *lockedConn) failLocked(err error) {
	dropped := len(lc.queue)
	lc.queue = nil
	lc.err = err
	lc.closed = true
	lc.cond.Broadcast()
	if lc.onFail != nil {
		lc.onFail(dropped, err)
	}
	if lc.onError != nil && dropped > 0 {
		lc.onError(fmt.Errorf("transport: %d frame(s) dropped: %w", dropped, err))
	}
}

func (lc *lockedConn) writeLoop() {
	for {
		lc.mu.Lock()
		for len(lc.queue) == 0 && !lc.closed {
			lc.cond.Wait()
		}
		if lc.closed {
			lc.mu.Unlock()
			return
		}
		frame := lc.queue[0]
		lc.queue = lc.queue[1:]
		lc.mu.Unlock()
		if _, err := lc.c.Write(frame); err != nil {
			// Frames still queued behind the failed write are lost with
			// the connection; report them like the dial-failure path so
			// operators see both loss modes.
			lc.mu.Lock()
			lc.failLocked(err)
			lc.mu.Unlock()
			lc.c.Close()
			return
		}
	}
}

// enqueue queues one already-framed message; it reports any write
// error observed so far so callers can re-dial.
func (lc *lockedConn) enqueue(frame []byte) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.closed {
		if lc.err != nil {
			return lc.err
		}
		return errors.New("transport: connection closed")
	}
	lc.queue = append(lc.queue, frame)
	lc.cond.Signal()
	return nil
}

// close stops the writer goroutine and closes the socket (if the
// background dial has produced one).
func (lc *lockedConn) close() {
	lc.mu.Lock()
	lc.closed = true
	lc.cond.Broadcast()
	c := lc.c
	lc.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// encodeFrame serializes one message into its on-the-wire frame:
// legacy untagged for NoSession, session-tagged otherwise.
func encodeFrame(sid SessionID, msg *core.Message) []byte {
	body := core.EncodeMessage(msg)
	if sid == NoSession {
		frame := make([]byte, 4+len(body))
		binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
		copy(frame[4:], body)
		return frame
	}
	frame := make([]byte, 4+32+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(32+len(body))|frameTagged)
	copy(frame[4:36], sid[:])
	copy(frame[36:], body)
	return frame
}

// WriteFrame writes one length-prefixed message in the legacy untagged
// format.
func WriteFrame(w io.Writer, msg *core.Message) error {
	return WriteFrameSession(w, NoSession, msg)
}

// WriteFrameSession writes one length-prefixed message tagged with
// sid; NoSession degrades to the untagged legacy format.
func WriteFrameSession(w io.Writer, sid SessionID, msg *core.Message) error {
	_, err := w.Write(encodeFrame(sid, msg))
	return err
}

// ReadFrame reads one message in either frame format, discarding any
// session tag.
func ReadFrame(r io.Reader) (*core.Message, error) {
	_, _, msg, err := ReadFrameSession(r)
	return msg, err
}

// ReadFrameSession reads one frame in either format. For tagged frames
// it returns the session ID and tagged=true; legacy frames return
// NoSession and tagged=false.
func ReadFrameSession(r io.Reader) (sid SessionID, tagged bool, msg *core.Message, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return NoSession, false, nil, err
	}
	word := binary.BigEndian.Uint32(hdr[:])
	tagged = word&frameTagged != 0
	size := word &^ frameTagged
	if tagged && size <= 32 {
		return NoSession, false, nil, fmt.Errorf("transport: tagged frame size %d too short for its session tag", size)
	}
	if size == 0 || size > maxFrame {
		return NoSession, false, nil, fmt.Errorf("transport: frame size %d out of range", size)
	}
	body := make([]byte, size)
	if _, err = io.ReadFull(r, body); err != nil {
		return NoSession, false, nil, err
	}
	if tagged {
		copy(sid[:], body[:32])
		body = body[32:]
	}
	msg, err = core.DecodeMessage(body)
	if err != nil {
		return NoSession, false, nil, err
	}
	return sid, tagged, msg, nil
}
