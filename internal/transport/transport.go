// Package transport moves signed protocol messages over real TCP
// connections: the deployment path under the public dissent SDK.
// Frames are length-prefixed encoded Messages; identity and integrity
// come from the protocol-level signatures, so connections need no
// additional handshake. The package knows nothing about engines — it
// hands every inbound message to a callback and exposes Send for
// outbound envelopes; the SDK's Node owns the engine loop and timers.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dissent/internal/core"
	"dissent/internal/group"
)

// maxFrame bounds a single message frame (a 128 KiB bulk slot plus
// generous protocol overhead).
const maxFrame = 64 << 20

// Roster maps node IDs to dialable addresses.
type Roster map[group.NodeID]string

// Mesh is one node's view of the group's TCP fabric: a listener
// accepting inbound connections plus lazily dialed, cached outbound
// connections to every roster address. Inbound messages are decoded
// and handed to the recv callback (from per-connection goroutines;
// the caller serializes). Soft I/O errors go to onError.
type Mesh struct {
	roster  Roster
	recv    func(*core.Message)
	onError func(error)

	ln net.Listener

	mu      sync.Mutex
	conns   map[group.NodeID]*lockedConn
	inbound []net.Conn
	closed  bool

	wg sync.WaitGroup
}

// ListenMesh binds addr and begins accepting and decoding inbound
// messages into recv. onError observes soft transport errors (may be
// nil).
func ListenMesh(addr string, roster Roster, recv func(*core.Message), onError func(error)) (*Mesh, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		roster:  roster,
		recv:    recv,
		onError: onError,
		ln:      ln,
		conns:   make(map[group.NodeID]*lockedConn),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the bound listen address.
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// Close shuts the mesh down: the listener, every connection, and all
// reader goroutines.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for _, c := range m.conns {
		c.close()
	}
	for _, c := range m.inbound {
		c.Close()
	}
	m.mu.Unlock()
	err := m.ln.Close()
	m.wg.Wait()
	return err
}

func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.inbound = append(m.inbound, conn)
		m.mu.Unlock()
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.readLoop(conn)
		}()
	}
}

func (m *Mesh) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !m.isClosed() {
				m.reportError(fmt.Errorf("transport: read: %w", err))
			}
			return
		}
		m.recv(msg)
	}
}

func (m *Mesh) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Send transmits one message, dialing (with retry) as needed; a stale
// cached connection is dropped and redialed once.
func (m *Mesh) Send(to group.NodeID, msg *core.Message) error {
	conn, err := m.conn(to)
	if err != nil {
		return err
	}
	if err := conn.writeFrame(msg); err != nil {
		m.dropConn(to)
		conn, err2 := m.conn(to)
		if err2 != nil {
			return err2
		}
		return conn.writeFrame(msg)
	}
	return nil
}

func (m *Mesh) dropConn(to group.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.conns[to]; ok {
		c.close()
		delete(m.conns, to)
	}
}

func (m *Mesh) conn(to group.NodeID) (*lockedConn, error) {
	m.mu.Lock()
	if c, ok := m.conns[to]; ok {
		m.mu.Unlock()
		return c, nil
	}
	addr, ok := m.roster[to]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %s", to)
	}
	var conn net.Conn
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		conn, err = net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			break
		}
		time.Sleep(time.Duration(50*(attempt+1)) * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.conns[to]; ok {
		conn.Close()
		return existing, nil
	}
	lc := newLockedConn(conn)
	m.conns[to] = lc
	return lc, nil
}

func (m *Mesh) reportError(err error) {
	if m.onError != nil {
		m.onError(err)
	}
}

// lockedConn serializes frame writes through a dedicated writer
// goroutine: sends from different goroutines would otherwise
// interleave partial frames, and synchronous writes from within read
// handlers could form distributed write-deadlocks when every node's
// TCP buffers fill simultaneously.
type lockedConn struct {
	c      net.Conn
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
	err    error
}

func newLockedConn(c net.Conn) *lockedConn {
	lc := &lockedConn{c: c}
	lc.cond = sync.NewCond(&lc.mu)
	go lc.writeLoop()
	return lc
}

func (lc *lockedConn) writeLoop() {
	for {
		lc.mu.Lock()
		for len(lc.queue) == 0 && !lc.closed {
			lc.cond.Wait()
		}
		if lc.closed {
			lc.mu.Unlock()
			return
		}
		frame := lc.queue[0]
		lc.queue = lc.queue[1:]
		lc.mu.Unlock()
		if _, err := lc.c.Write(frame); err != nil {
			lc.mu.Lock()
			lc.err = err
			lc.closed = true
			lc.mu.Unlock()
			lc.c.Close()
			return
		}
	}
}

// enqueue queues one already-framed message; it reports any write
// error observed so far so callers can re-dial.
func (lc *lockedConn) enqueue(frame []byte) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.closed {
		if lc.err != nil {
			return lc.err
		}
		return errors.New("transport: connection closed")
	}
	lc.queue = append(lc.queue, frame)
	lc.cond.Signal()
	return nil
}

// close stops the writer goroutine and closes the socket.
func (lc *lockedConn) close() {
	lc.mu.Lock()
	lc.closed = true
	lc.cond.Broadcast()
	lc.mu.Unlock()
	lc.c.Close()
}

func (lc *lockedConn) writeFrame(msg *core.Message) error {
	body := core.EncodeMessage(msg)
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	return lc.enqueue(frame)
}

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, msg *core.Message) error {
	body := core.EncodeMessage(msg)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) (*core.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > maxFrame {
		return nil, fmt.Errorf("transport: frame size %d out of range", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return core.DecodeMessage(body)
}
