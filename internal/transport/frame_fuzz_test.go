package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dissent/internal/core"
)

// fuzzSeedFrames builds the seed corpus for FuzzReadFrame: well-formed
// frames in both wire formats plus the interesting malformed shapes
// (truncations, size-bound violations, tag/size mismatches). go test
// runs the target over these seeds on every CI run, so the decoder's
// error paths stay exercised even outside fuzzing sessions.
func fuzzSeedFrames() [][]byte {
	var from [8]byte
	copy(from[:], "fuzznode")
	msg := &core.Message{From: from, Type: core.MsgClientSubmit, Round: 99,
		Body: []byte("fuzz seed body"), Sig: []byte("fuzz seed signature")}
	var sid SessionID
	copy(sid[:], "fuzz-session-fuzz-session-fuzz-s")

	var legacy, tagged bytes.Buffer
	WriteFrame(&legacy, msg)
	WriteFrameSession(&tagged, sid, msg)

	oversize := []byte{0x7F, 0xFF, 0xFF, 0xFF}
	zero := []byte{0, 0, 0, 0}
	// Tagged bit set but size too small to hold the 32-byte tag.
	shortTag := []byte{0x80, 0, 0, 0x10, 1, 2, 3, 4}
	// Valid header, truncated body.
	truncated := append([]byte{0, 0, 0, 0x40}, []byte("only a few bytes")...)
	// Tagged frame whose inner message is garbage.
	garbageBody := make([]byte, 4+32+5)
	binary.BigEndian.PutUint32(garbageBody[:4], uint32(32+5)|frameTagged)
	copy(garbageBody[36:], "junk!")

	return [][]byte{
		legacy.Bytes(),
		tagged.Bytes(),
		oversize,
		zero,
		shortTag,
		truncated,
		garbageBody,
		{},
		{0, 0},
	}
}

// FuzzReadFrame exercises the frame decoder: it must never panic, and
// every frame it accepts must re-encode and re-decode to the same
// message and session tag.
func FuzzReadFrame(f *testing.F) {
	for _, seed := range fuzzSeedFrames() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sid, tagged, msg, err := ReadFrameSession(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !tagged && sid != NoSession {
			t.Fatalf("untagged frame returned session %x", sid[:8])
		}
		var buf bytes.Buffer
		if err := WriteFrameSession(&buf, sid, msg); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		sid2, _, msg2, err := ReadFrameSession(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if sid2 != sid || msg2.Type != msg.Type || msg2.Round != msg.Round ||
			msg2.From != msg.From || !bytes.Equal(msg2.Body, msg.Body) {
			t.Fatalf("round trip diverged: %+v vs %+v", msg, msg2)
		}
	})
}
