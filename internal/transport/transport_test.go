package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"dissent/internal/core"
	"dissent/internal/crypto"
	"dissent/internal/group"
)

func TestFrameRoundTrip(t *testing.T) {
	var from group.NodeID
	copy(from[:], "nodeid00")
	msg := &core.Message{From: from, Type: core.MsgClientSubmit, Round: 7,
		Body: []byte("payload"), Sig: []byte("signature")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 7 || !bytes.Equal(got.Body, msg.Body) || got.From != from {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	var zero bytes.Buffer
	zero.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&zero); err == nil {
		t.Error("zero-length frame accepted")
	}
}

// TestTCPGroupEndToEnd runs a complete group — 2 servers, 3 clients —
// over real localhost TCP, through full setup (pseudonym submission,
// verifiable scheduling shuffle, certification) and several DC-net
// rounds, and checks an anonymous message arrives everywhere.
func TestTCPGroupEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	keyGrp := crypto.P256()
	msgGrp := crypto.ModP512Test()
	const m, n = 2, 3

	serverKPs := make([]*crypto.KeyPair, m)
	serverMsgKPs := make([]*crypto.KeyPair, m)
	serverKeys := make([]crypto.Element, m)
	serverMsgKeys := make([]crypto.Element, m)
	for i := 0; i < m; i++ {
		serverKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		serverMsgKPs[i], _ = crypto.GenerateKeyPair(msgGrp, nil)
		serverKeys[i] = serverKPs[i].Public
		serverMsgKeys[i] = serverMsgKPs[i].Public
	}
	clientKPs := make([]*crypto.KeyPair, n)
	clientKeys := make([]crypto.Element, n)
	for i := 0; i < n; i++ {
		clientKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		clientKeys[i] = clientKPs[i].Public
	}
	policy := group.DefaultPolicy()
	policy.MessageGroup = "modp-512-test"
	policy.Shadows = 4
	policy.WindowMin = 20 * time.Millisecond
	// Short hard timeout: any submission lost to scheduling jitter
	// self-heals through the §3.7 failed-round path well inside the
	// test deadline.
	policy.HardTimeout = 5 * time.Second
	policy.DefaultOpenLen = 64
	def, err := group.NewDefinition("tcp-test", serverKeys, serverMsgKeys, clientKeys, policy)
	if err != nil {
		t.Fatal(err)
	}

	kpByID := map[group.NodeID]*crypto.KeyPair{}
	msgKPByID := map[group.NodeID]*crypto.KeyPair{}
	for i := 0; i < m; i++ {
		id := group.IDFromKey(keyGrp, serverKeys[i])
		kpByID[id] = serverKPs[i]
		msgKPByID[id] = serverMsgKPs[i]
	}
	for i := 0; i < n; i++ {
		kpByID[group.IDFromKey(keyGrp, clientKeys[i])] = clientKPs[i]
	}

	// Reserve ports, build the roster, then listen.
	roster := Roster{}
	addrs := map[group.NodeID]string{}
	var nodes []*Node
	reserve := func(id group.NodeID) string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		roster[id] = addr
		addrs[id] = addr
		return addr
	}
	for _, mem := range def.Servers {
		reserve(mem.ID)
	}
	for _, mem := range def.Clients {
		reserve(mem.ID)
	}

	opts := core.Options{MessageGroup: msgGrp}
	var mu sync.Mutex
	delivered := map[string]int{}
	var clients []*core.Client

	for _, mem := range def.Servers {
		srv, err := core.NewServer(def, kpByID[mem.ID], msgKPByID[mem.ID], opts)
		if err != nil {
			t.Fatal(err)
		}
		node, err := Listen(mem.ID, addrs[mem.ID], roster, srv)
		if err != nil {
			t.Fatal(err)
		}
		node.OnError = func(err error) { t.Logf("server error: %v", err) }
		idx := len(nodes)
		node.OnEvent = func(e core.Event) { t.Logf("server %d: r%d %s %s", idx, e.Round, e.Kind, e.Detail) }
		nodes = append(nodes, node)
	}
	for _, mem := range def.Clients {
		cl, err := core.NewClient(def, kpByID[mem.ID], opts)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
		node, err := Listen(mem.ID, addrs[mem.ID], roster, cl)
		if err != nil {
			t.Fatal(err)
		}
		node.OnDelivery = func(d core.Delivery) {
			mu.Lock()
			delivered[string(d.Data)]++
			mu.Unlock()
		}
		node.OnError = func(err error) { t.Logf("client error: %v", err) }
		nodes = append(nodes, node)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	clients[1].Send([]byte("over real tcp"))
	for _, nd := range nodes {
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.After(30 * time.Second)
	for {
		mu.Lock()
		got := delivered["over real tcp"]
		mu.Unlock()
		if got >= n {
			break
		}
		select {
		case <-deadline:
			mu.Lock()
			t.Fatalf("message delivered at %d/%d clients after 30s", delivered["over real tcp"], n)
			mu.Unlock()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
