package transport

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"dissent/internal/core"
	"dissent/internal/group"
)

func TestFrameRoundTrip(t *testing.T) {
	var from group.NodeID
	copy(from[:], "nodeid00")
	msg := &core.Message{From: from, Type: core.MsgClientSubmit, Round: 7,
		Body: []byte("payload"), Sig: []byte("signature")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 7 || !bytes.Equal(got.Body, msg.Body) || got.From != from {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	var zero bytes.Buffer
	zero.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&zero); err == nil {
		t.Error("zero-length frame accepted")
	}
}

// TestMeshExchange wires two meshes over loopback TCP and checks
// messages flow both ways, in order, across many frames. (Full-group
// protocol runs over TCP are covered by the SDK integration tests in
// the root dissent package.)
func TestMeshExchange(t *testing.T) {
	var idA, idB group.NodeID
	copy(idA[:], "node-AAA")
	copy(idB[:], "node-BBB")

	roster := Roster{}
	type recvd struct {
		mu   sync.Mutex
		msgs []*core.Message
	}
	var atA, atB recvd
	record := func(r *recvd) func(*core.Message) {
		return func(m *core.Message) {
			r.mu.Lock()
			r.msgs = append(r.msgs, m)
			r.mu.Unlock()
		}
	}
	a, err := ListenMesh("127.0.0.1:0", roster, record(&atA), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenMesh("127.0.0.1:0", roster, record(&atB), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	roster[idA] = a.Addr()
	roster[idB] = b.Addr()

	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send(idB, &core.Message{From: idA, Type: core.MsgClientSubmit,
			Round: uint64(i), Body: []byte("a->b")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Send(idA, &core.Message{From: idB, Type: core.MsgOutput, Body: []byte("b->a")}); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for {
		atB.mu.Lock()
		gotB := len(atB.msgs)
		atB.mu.Unlock()
		atA.mu.Lock()
		gotA := len(atA.msgs)
		atA.mu.Unlock()
		if gotB == n && gotA == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("after 10s: B saw %d/%d, A saw %d/1", gotB, n, gotA)
		case <-time.After(10 * time.Millisecond):
		}
	}
	atB.mu.Lock()
	defer atB.mu.Unlock()
	for i, m := range atB.msgs {
		if m.Round != uint64(i) {
			t.Fatalf("message %d arrived with round %d: reordered", i, m.Round)
		}
	}
}

// TestMeshSendUnknownNode checks the roster miss path.
func TestMeshSendUnknownNode(t *testing.T) {
	m, err := ListenMesh("127.0.0.1:0", Roster{}, func(*core.Message) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var unknown group.NodeID
	copy(unknown[:], "ghost-id")
	if err := m.Send(unknown, &core.Message{From: unknown, Type: core.MsgOutput}); err == nil {
		t.Error("send to unknown node succeeded")
	}
}
