package transport

import (
	"bytes"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/core"
	"dissent/internal/crypto"
	"dissent/internal/group"
)

func TestFrameRoundTrip(t *testing.T) {
	var from group.NodeID
	copy(from[:], "nodeid00")
	msg := &core.Message{From: from, Type: core.MsgClientSubmit, Round: 7,
		Body: []byte("payload"), Sig: []byte("signature")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 7 || !bytes.Equal(got.Body, msg.Body) || got.From != from {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	var zero bytes.Buffer
	zero.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&zero); err == nil {
		t.Error("zero-length frame accepted")
	}
}

// tcpGroup is a complete group running over real localhost TCP.
type tcpGroup struct {
	def       *group.Definition
	servers   []*core.Server
	clients   []*core.Client
	nodes     []*Node
	mu        sync.Mutex
	delivered map[string]int
}

func (g *tcpGroup) close() {
	for _, nd := range g.nodes {
		nd.Close()
	}
}

// deliveredCount returns how many clients saw the given payload.
func (g *tcpGroup) deliveredCount(payload string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.delivered[payload]
}

// startTCPGroup builds an m-server, n-client group over localhost TCP
// and starts every node. mutate may adjust the policy first.
func startTCPGroup(t *testing.T, m, n int, mutate func(*group.Policy), firstSend []byte) *tcpGroup {
	t.Helper()
	keyGrp := crypto.P256()
	msgGrp := crypto.ModP512Test()

	serverKPs := make([]*crypto.KeyPair, m)
	serverMsgKPs := make([]*crypto.KeyPair, m)
	serverKeys := make([]crypto.Element, m)
	serverMsgKeys := make([]crypto.Element, m)
	for i := 0; i < m; i++ {
		serverKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		serverMsgKPs[i], _ = crypto.GenerateKeyPair(msgGrp, nil)
		serverKeys[i] = serverKPs[i].Public
		serverMsgKeys[i] = serverMsgKPs[i].Public
	}
	clientKPs := make([]*crypto.KeyPair, n)
	clientKeys := make([]crypto.Element, n)
	for i := 0; i < n; i++ {
		clientKPs[i], _ = crypto.GenerateKeyPair(keyGrp, nil)
		clientKeys[i] = clientKPs[i].Public
	}
	policy := group.DefaultPolicy()
	policy.MessageGroup = "modp-512-test"
	policy.Shadows = 4
	policy.WindowMin = 20 * time.Millisecond
	// Short hard timeout: any submission lost to scheduling jitter
	// self-heals through the §3.7 failed-round path well inside the
	// test deadline.
	policy.HardTimeout = 5 * time.Second
	policy.DefaultOpenLen = 64
	if mutate != nil {
		mutate(&policy)
	}
	def, err := group.NewDefinition("tcp-test", serverKeys, serverMsgKeys, clientKeys, policy)
	if err != nil {
		t.Fatal(err)
	}

	kpByID := map[group.NodeID]*crypto.KeyPair{}
	msgKPByID := map[group.NodeID]*crypto.KeyPair{}
	for i := 0; i < m; i++ {
		id := group.IDFromKey(keyGrp, serverKeys[i])
		kpByID[id] = serverKPs[i]
		msgKPByID[id] = serverMsgKPs[i]
	}
	for i := 0; i < n; i++ {
		kpByID[group.IDFromKey(keyGrp, clientKeys[i])] = clientKPs[i]
	}

	// Reserve ports, build the roster, then listen.
	roster := Roster{}
	addrs := map[group.NodeID]string{}
	reserve := func(id group.NodeID) string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		roster[id] = addr
		addrs[id] = addr
		return addr
	}
	for _, mem := range def.Servers {
		reserve(mem.ID)
	}
	for _, mem := range def.Clients {
		reserve(mem.ID)
	}

	opts := core.Options{MessageGroup: msgGrp}
	g := &tcpGroup{def: def, delivered: map[string]int{}}

	for _, mem := range def.Servers {
		srv, err := core.NewServer(def, kpByID[mem.ID], msgKPByID[mem.ID], opts)
		if err != nil {
			t.Fatal(err)
		}
		g.servers = append(g.servers, srv)
		node, err := Listen(mem.ID, addrs[mem.ID], roster, srv)
		if err != nil {
			t.Fatal(err)
		}
		node.OnError = func(err error) { t.Logf("server error: %v", err) }
		idx := len(g.nodes)
		node.OnEvent = func(e core.Event) { t.Logf("server %d: r%d %s %s", idx, e.Round, e.Kind, e.Detail) }
		g.nodes = append(g.nodes, node)
	}
	for _, mem := range def.Clients {
		cl, err := core.NewClient(def, kpByID[mem.ID], opts)
		if err != nil {
			t.Fatal(err)
		}
		g.clients = append(g.clients, cl)
		node, err := Listen(mem.ID, addrs[mem.ID], roster, cl)
		if err != nil {
			t.Fatal(err)
		}
		node.OnDelivery = func(d core.Delivery) {
			g.mu.Lock()
			g.delivered[string(d.Data)]++
			g.mu.Unlock()
		}
		node.OnError = func(err error) { t.Logf("client error: %v", err) }
		g.nodes = append(g.nodes, node)
	}

	if firstSend != nil {
		g.clients[1%n].Send(firstSend)
	}
	for _, nd := range g.nodes {
		if err := nd.Start(); err != nil {
			g.close()
			t.Fatal(err)
		}
	}
	return g
}

// TestTCPGroupEndToEnd runs a complete group — 2 servers, 3 clients —
// over real localhost TCP, through full setup (pseudonym submission,
// verifiable scheduling shuffle, certification) and several DC-net
// rounds, and checks an anonymous message arrives everywhere.
func TestTCPGroupEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	const n = 3
	g := startTCPGroup(t, 2, n, nil, []byte("over real tcp"))
	defer g.close()

	deadline := time.After(30 * time.Second)
	for g.deliveredCount("over real tcp") < n {
		select {
		case <-deadline:
			t.Fatalf("message delivered at %d/%d clients after 30s",
				g.deliveredCount("over real tcp"), n)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// TestBeaconFetchVerifyOverTCP is the beacon's deployment-path
// integration test: a 2-server, 2-client group runs DC-net rounds over
// loopback TCP while one server exposes its beacon chain through the
// same HTTP handler cmd/dissentd mounts; an external client fetches
// /beacon/latest, syncs the chain, and verifies every share and link
// from genesis with public keys alone.
func TestBeaconFetchVerifyOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	g := startTCPGroup(t, 2, 2, func(p *group.Policy) { p.BeaconEpochRounds = 2 }, nil)
	defer g.close()

	chain := g.servers[0].BeaconChain()
	if chain == nil {
		t.Fatal("beacon disabled")
	}
	ts := httptest.NewServer(beacon.Handler(chain))
	defer ts.Close()
	src := &beacon.HTTPSource{URL: ts.URL, Client: ts.Client()}

	// Wait for the chain to pass a few rounds.
	deadline := time.After(30 * time.Second)
	for chain.Len() < 4 {
		select {
		case <-deadline:
			t.Fatalf("beacon chain reached only %d entries after 30s", chain.Len())
		case <-time.After(50 * time.Millisecond):
		}
	}

	latest, err := src.Latest()
	if err != nil {
		t.Fatalf("GET /beacon/latest: %v", err)
	}
	if got := chain.Get(latest.Round); got == nil || got.Value != latest.Value {
		t.Fatalf("served latest (round %d) does not match the chain", latest.Round)
	}
	if _, err := src.Entry(latest.Round); err != nil {
		t.Fatalf("GET /beacon/{round}: %v", err)
	}

	// An external verifier: fresh chain replica, same group definition.
	verifier := beacon.NewChain(g.def.Group(), g.def.ServerPubKeys(), beacon.GenesisValue(g.def.GroupID()))
	added, err := verifier.Sync(src)
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if added < 4 {
		t.Fatalf("synced only %d entries", added)
	}
	if err := verifier.Verify(); err != nil {
		t.Fatalf("fetched chain failed verification: %v", err)
	}
	if verifier.Get(latest.Round).Value != latest.Value {
		t.Fatal("verifier head does not match served latest")
	}
}
