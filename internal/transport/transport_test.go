package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dissent/internal/core"
	"dissent/internal/group"
)

func TestFrameRoundTrip(t *testing.T) {
	var from group.NodeID
	copy(from[:], "nodeid00")
	msg := &core.Message{From: from, Type: core.MsgClientSubmit, Round: 7,
		Body: []byte("payload"), Sig: []byte("signature")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 7 || !bytes.Equal(got.Body, msg.Body) || got.From != from {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	var zero bytes.Buffer
	zero.Write([]byte{0, 0, 0, 0})
	if _, err := ReadFrame(&zero); err == nil {
		t.Error("zero-length frame accepted")
	}
}

// legacyReadFrame is the pre-session reader, reproduced verbatim so
// compatibility tests can pin how an OLD peer reacts to new frames.
func legacyReadFrame(r io.Reader) (*core.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > maxFrame {
		return nil, fmt.Errorf("transport: frame size %d out of range", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return core.DecodeMessage(body)
}

// TestFrameSessionRoundTrip checks the tagged format carries the
// session ID and that NoSession degrades to the legacy wire format.
func TestFrameSessionRoundTrip(t *testing.T) {
	var from group.NodeID
	copy(from[:], "nodeid00")
	var sid SessionID
	copy(sid[:], "session-tag-0123456789abcdef....")
	msg := &core.Message{From: from, Type: core.MsgCommit, Round: 42,
		Body: []byte("tagged payload"), Sig: []byte("sig")}

	var buf bytes.Buffer
	if err := WriteFrameSession(&buf, sid, msg); err != nil {
		t.Fatal(err)
	}
	gotSID, tagged, got, err := ReadFrameSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tagged || gotSID != sid {
		t.Fatalf("tag round trip: tagged=%v sid=%x", tagged, gotSID[:8])
	}
	if got.Round != 42 || !bytes.Equal(got.Body, msg.Body) || got.From != from {
		t.Fatalf("message round trip mismatch: %+v", got)
	}

	// NoSession writes the legacy untagged format byte for byte.
	var legacy, viaSession bytes.Buffer
	if err := WriteFrame(&legacy, msg); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrameSession(&viaSession, NoSession, msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), viaSession.Bytes()) {
		t.Fatal("NoSession frame differs from the legacy format")
	}
}

// TestFrameCompat pins both directions of wire compatibility: a legacy
// frame decodes in the new reader as untagged, and a tagged frame
// fails in the OLD reader with a clear frame-size error instead of
// desynchronizing or yielding garbage.
func TestFrameCompat(t *testing.T) {
	var from group.NodeID
	copy(from[:], "nodeid00")
	msg := &core.Message{From: from, Type: core.MsgClientSubmit, Round: 7,
		Body: []byte("payload"), Sig: []byte("signature")}

	// Old frame → new reader: untagged, NoSession.
	var old bytes.Buffer
	if err := WriteFrame(&old, msg); err != nil {
		t.Fatal(err)
	}
	sid, tagged, got, err := ReadFrameSession(&old)
	if err != nil {
		t.Fatal(err)
	}
	if tagged || sid != NoSession {
		t.Fatalf("legacy frame read as tagged=%v sid=%x", tagged, sid[:8])
	}
	if got.Round != 7 || !bytes.Equal(got.Body, msg.Body) {
		t.Fatalf("legacy frame mismatch: %+v", got)
	}

	// New tagged frame → old reader: a clear, immediate error.
	var sid2 SessionID
	sid2[0] = 0xAB
	var tb bytes.Buffer
	if err := WriteFrameSession(&tb, sid2, msg); err != nil {
		t.Fatal(err)
	}
	if _, err := legacyReadFrame(&tb); err == nil {
		t.Fatal("old reader accepted a tagged frame")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("old reader failed with %v, want a frame-size error", err)
	}

	// Truncated tagged frame: size word says tagged but too short to
	// hold the tag.
	short := []byte{0x80, 0, 0, 16, 1, 2, 3}
	if _, _, _, err := ReadFrameSession(bytes.NewReader(short)); err == nil {
		t.Fatal("undersized tagged frame accepted")
	}
}

// TestMeshSessionRouting binds two sessions on one mesh and checks
// tagged frames route exactly — never across sessions — while frames
// for unbound sessions are dropped and reported.
func TestMeshSessionRouting(t *testing.T) {
	var idA group.NodeID
	copy(idA[:], "node-AAA")
	var s1, s2, s3 SessionID
	s1[0], s2[0], s3[0] = 1, 2, 3

	type recvd struct {
		mu   sync.Mutex
		msgs []*core.Message
	}
	record := func(r *recvd) func(*core.Message) {
		return func(m *core.Message) {
			r.mu.Lock()
			r.msgs = append(r.msgs, m)
			r.mu.Unlock()
		}
	}
	var at1, at2 recvd
	var errMu sync.Mutex
	var errs []error
	a, err := NewMesh("127.0.0.1:0", func(e error) {
		errMu.Lock()
		errs = append(errs, e)
		errMu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	roster := Roster{idA: a.Addr()}
	if err := a.Bind(s1, roster, record(&at1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(s2, roster, record(&at2)); err != nil {
		t.Fatal(err)
	}
	if err := a.Bind(s1, roster, record(&at1)); err == nil {
		t.Fatal("duplicate bind accepted")
	}

	b, err := NewMesh("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, sid := range []SessionID{s1, s2, s3} {
		if err := b.Bind(sid, roster, func(*core.Message) {}); err != nil {
			t.Fatal(err)
		}
	}

	const n = 20
	for i := 0; i < n; i++ {
		if err := b.SendSession(s1, idA, &core.Message{From: idA, Type: core.MsgCommit,
			Round: uint64(i), Body: []byte("s1")}); err != nil {
			t.Fatal(err)
		}
		if err := b.SendSession(s2, idA, &core.Message{From: idA, Type: core.MsgShare,
			Round: uint64(i), Body: []byte("s2")}); err != nil {
			t.Fatal(err)
		}
	}
	// s3 is bound at the sender but not the receiver: dropped there.
	if err := b.SendSession(s3, idA, &core.Message{From: idA, Type: core.MsgOutput,
		Body: []byte("s3")}); err != nil {
		t.Fatal(err)
	}
	if err := b.SendSession(SessionID{0xEE}, idA, &core.Message{From: idA}); err == nil {
		t.Fatal("send on an unbound session accepted")
	}

	deadline := time.After(10 * time.Second)
	for {
		at1.mu.Lock()
		got1 := len(at1.msgs)
		at1.mu.Unlock()
		at2.mu.Lock()
		got2 := len(at2.msgs)
		at2.mu.Unlock()
		errMu.Lock()
		dropped := len(errs)
		errMu.Unlock()
		if got1 == n && got2 == n && dropped > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("after 10s: s1 %d/%d, s2 %d/%d, dropped %d/1", got1, n, got2, n, dropped)
		case <-time.After(5 * time.Millisecond):
		}
	}
	at1.mu.Lock()
	defer at1.mu.Unlock()
	at2.mu.Lock()
	defer at2.mu.Unlock()
	for i, m := range at1.msgs {
		if string(m.Body) != "s1" || m.Round != uint64(i) {
			t.Fatalf("session 1 message %d: %q round %d (crossed or reordered)", i, m.Body, m.Round)
		}
	}
	for i, m := range at2.msgs {
		if string(m.Body) != "s2" || m.Round != uint64(i) {
			t.Fatalf("session 2 message %d: %q round %d (crossed or reordered)", i, m.Body, m.Round)
		}
	}
}

// TestMeshLegacyFallback checks an untagged (old-peer) frame reaches a
// mesh's sole bound session even when that session has a real ID.
func TestMeshLegacyFallback(t *testing.T) {
	var sid SessionID
	sid[0] = 9
	got := make(chan *core.Message, 1)
	m, err := NewMesh("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Bind(sid, Roster{}, func(msg *core.Message) { got <- msg }); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var from group.NodeID
	copy(from[:], "old-peer")
	if err := WriteFrame(conn, &core.Message{From: from, Type: core.MsgOutput, Body: []byte("legacy")}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Body) != "legacy" {
			t.Fatalf("got %q", msg.Body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("legacy frame not routed to the sole session")
	}
}

// TestMeshExchange wires two meshes over loopback TCP and checks
// messages flow both ways, in order, across many frames. (Full-group
// protocol runs over TCP are covered by the SDK integration tests in
// the root dissent package.)
func TestMeshExchange(t *testing.T) {
	var idA, idB group.NodeID
	copy(idA[:], "node-AAA")
	copy(idB[:], "node-BBB")

	roster := Roster{}
	type recvd struct {
		mu   sync.Mutex
		msgs []*core.Message
	}
	var atA, atB recvd
	record := func(r *recvd) func(*core.Message) {
		return func(m *core.Message) {
			r.mu.Lock()
			r.msgs = append(r.msgs, m)
			r.mu.Unlock()
		}
	}
	a, err := ListenMesh("127.0.0.1:0", roster, record(&atA), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenMesh("127.0.0.1:0", roster, record(&atB), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Bind copies the roster, so late addresses (only known once the
	// listeners are up) register through AddPeer — the same path members
	// admitted mid-session by a roster update use.
	for _, m := range []*Mesh{a, b} {
		if err := m.AddPeer(NoSession, idA, a.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := m.AddPeer(NoSession, idB, b.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send(idB, &core.Message{From: idA, Type: core.MsgClientSubmit,
			Round: uint64(i), Body: []byte("a->b")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Send(idA, &core.Message{From: idB, Type: core.MsgOutput, Body: []byte("b->a")}); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for {
		atB.mu.Lock()
		gotB := len(atB.msgs)
		atB.mu.Unlock()
		atA.mu.Lock()
		gotA := len(atA.msgs)
		atA.mu.Unlock()
		if gotB == n && gotA == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("after 10s: B saw %d/%d, A saw %d/1", gotB, n, gotA)
		case <-time.After(10 * time.Millisecond):
		}
	}
	atB.mu.Lock()
	defer atB.mu.Unlock()
	for i, m := range atB.msgs {
		if m.Round != uint64(i) {
			t.Fatalf("message %d arrived with round %d: reordered", i, m.Round)
		}
	}
}

// TestMeshStats checks the connection-health accounting: a reachable
// peer shows up connected, an unreachable one accumulates dial
// failures with its last error retained, and the snapshot is sorted by
// address.
func TestMeshStats(t *testing.T) {
	var idA, idB, idDead group.NodeID
	copy(idA[:], "node-AAA")
	copy(idB[:], "node-BBB")
	copy(idDead[:], "node-DED")

	var atB recvd2
	a, err := ListenMesh("127.0.0.1:0", Roster{}, func(*core.Message) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenMesh("127.0.0.1:0", Roster{}, atB.record(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// A dead address: reserve a port, then close the listener so dials
	// are refused immediately.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	if err := a.AddPeer(NoSession, idB, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer(NoSession, idDead, deadAddr); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(idB, &core.Message{From: idA, Type: core.MsgOutput, Body: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(idDead, &core.Message{From: idA, Type: core.MsgOutput, Body: []byte("void")}); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	for {
		st := a.Stats()
		var live, gone *PeerStats
		for i := range st.Peers {
			switch st.Peers[i].Addr {
			case b.Addr():
				live = &st.Peers[i]
			case deadAddr:
				gone = &st.Peers[i]
			}
		}
		if live != nil && live.State == PeerConnected &&
			gone != nil && st.DialFailures >= 1 && gone.LastError != "" {
			if live.Dials == 0 || gone.Dials == 0 {
				t.Fatalf("dial counts not recorded: %+v / %+v", live, gone)
			}
			if gone.State != PeerDialing && gone.State != PeerFailed {
				t.Fatalf("dead peer state %q", gone.State)
			}
			for i := 1; i < len(st.Peers); i++ {
				if st.Peers[i-1].Addr > st.Peers[i].Addr {
					t.Fatalf("peers not sorted: %q > %q", st.Peers[i-1].Addr, st.Peers[i].Addr)
				}
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("stats never settled: %+v", st)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// recvd2 is a small recorder for tests that only need counts.
type recvd2 struct {
	mu   sync.Mutex
	msgs []*core.Message
}

func (r *recvd2) record() func(*core.Message) {
	return func(m *core.Message) {
		r.mu.Lock()
		r.msgs = append(r.msgs, m)
		r.mu.Unlock()
	}
}

// TestMeshSendUnknownNode checks the roster miss path.
func TestMeshSendUnknownNode(t *testing.T) {
	m, err := ListenMesh("127.0.0.1:0", Roster{}, func(*core.Message) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var unknown group.NodeID
	copy(unknown[:], "ghost-id")
	if err := m.Send(unknown, &core.Message{From: unknown, Type: core.MsgOutput}); err == nil {
		t.Error("send to unknown node succeeded")
	}
}
