package dcnet

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dissent/internal/crypto"
)

// Slot wire layout (within one open message slot of length L):
//
//	[ 0:16)  seed   — random per-round mask seed, in the clear
//	[16: L)  body   — plaintext XOR PRNG(seed)
//
// body layout:
//
//	[0:4)  NextLen   — requested slot length for round r+1 (0 closes)
//	[4:5)  ShuffleReq — k-bit shuffle-request field (nonzero requests
//	                    an accusation shuffle, §3.9)
//	[5:9)  DataLen   — bytes of application data following
//	[9:9+DataLen) Data
//	remainder: zero padding (masked)
//
// The random seed makes every cleartext bit unpredictable before the
// round completes — the OAEP-like padding of §3.9 — so a disruptor's
// bit flip lands on a 0 with probability 1/2, creating a witness bit.
const (
	// SeedLen is the mask seed size.
	SeedLen = 16
	// slotHeaderLen is NextLen(4) + ShuffleReq(1) + DataLen(4).
	slotHeaderLen = 9
	// MinSlotLen is the smallest usable open-slot length.
	MinSlotLen = SeedLen + slotHeaderLen
)

// SlotCapacity returns the application-data capacity of a slot of
// length n (0 if below the minimum).
func SlotCapacity(n int) int {
	if n < MinSlotLen {
		return 0
	}
	return n - MinSlotLen
}

// SlotLenFor returns the smallest slot length able to carry dataLen
// bytes of application data.
func SlotLenFor(dataLen int) int { return MinSlotLen + dataLen }

// SlotPayload is the decoded content of one open slot.
type SlotPayload struct {
	// NextLen is the owner's requested slot length for the next round;
	// 0 closes the slot.
	NextLen int
	// ShuffleReq is the k-bit shuffle-request field; any nonzero value
	// asks the servers to run an accusation shuffle.
	ShuffleReq byte
	// Data is the application payload.
	Data []byte
}

// EncodeSlot writes payload into buf (a full slot region, len(buf) =
// the slot's current length), masking the body with a fresh random
// seed. rnd may be nil for crypto/rand.
func EncodeSlot(buf []byte, p SlotPayload, rnd io.Reader) error {
	if len(buf) < MinSlotLen {
		return fmt.Errorf("dcnet: slot length %d below minimum %d", len(buf), MinSlotLen)
	}
	if len(p.Data) > SlotCapacity(len(buf)) {
		return fmt.Errorf("dcnet: %d bytes of data exceed slot capacity %d",
			len(p.Data), SlotCapacity(len(buf)))
	}
	if p.NextLen < 0 || p.NextLen >= 1<<32 {
		return errors.New("dcnet: NextLen out of range")
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	if _, err := io.ReadFull(rnd, buf[:SeedLen]); err != nil {
		return err
	}
	// An all-zero seed would collide with the idle-slot encoding;
	// probability 2^-128, but force a bit anyway.
	if allZero(buf[:SeedLen]) {
		buf[0] = 1
	}
	body := buf[SeedLen:]
	binary.BigEndian.PutUint32(body[0:4], uint32(p.NextLen))
	body[4] = p.ShuffleReq
	binary.BigEndian.PutUint32(body[5:9], uint32(len(p.Data)))
	n := copy(body[slotHeaderLen:], p.Data)
	// Only the padding tail needs zeroing — the header and data regions
	// were just written in full.
	clear(body[slotHeaderLen+n:])
	crypto.XORHashStream(slotMaskDomain, buf[:SeedLen], 0, body)
	return nil
}

// slotMaskDomain keys the OAEP-like slot body mask. The mask stream is
// the allocation-free SHA-256 PRF (crypto.XORHashStream): every encode
// draws a fresh seed, so a rekeyable-without-allocating stream is what
// keeps the client submit path at 0 allocs/op.
const slotMaskDomain = "dissent/slot-mask"

// DecodeSlot parses a slot region from a round's cleartext output.
// idle is true when the region is all zero — the owner transmitted
// nothing (offline or silent). An error means the region was garbled,
// e.g. by a disruptor. buf is not modified; the only allocations are
// the returned payload and its data copy.
func DecodeSlot(buf []byte) (p *SlotPayload, idle bool, err error) {
	if len(buf) < MinSlotLen {
		return nil, false, fmt.Errorf("dcnet: slot too short: %d", len(buf))
	}
	if allZero(buf) {
		return nil, true, nil
	}
	seed := buf[:SeedLen]
	var hdr [slotHeaderLen]byte
	copy(hdr[:], buf[SeedLen:])
	crypto.XORHashStream(slotMaskDomain, seed, 0, hdr[:])
	dataLen := int(binary.BigEndian.Uint32(hdr[5:9]))
	if dataLen < 0 || dataLen > len(buf)-MinSlotLen {
		return nil, false, fmt.Errorf("dcnet: slot data length %d exceeds body", dataLen)
	}
	data := make([]byte, dataLen)
	copy(data, buf[SeedLen+slotHeaderLen:])
	crypto.XORHashStream(slotMaskDomain, seed, slotHeaderLen, data)
	return &SlotPayload{
		NextLen:    int(binary.BigEndian.Uint32(hdr[0:4])),
		ShuffleReq: hdr[4],
		Data:       data,
	}, false, nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
