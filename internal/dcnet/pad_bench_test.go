package dcnet

import (
	"fmt"
	"testing"

	"dissent/internal/crypto"
)

// BenchmarkServerPadParallel sweeps worker counts × client counts over
// the production AES stream. On a W-core machine the W-worker rows
// should approach W× the 1-worker row for the 1024-client shard (the
// expansion is compute-bound); allocations stay flat because lanes are
// reused.
func BenchmarkServerPadParallel(b *testing.B) {
	const roundLen = 1024
	for _, clients := range []int{128, 1024} {
		seeds := paritySeeds(7, clients)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%dclients/%dworkers", clients, workers), func(b *testing.B) {
				pp := NewParallelPad(crypto.NewAESPRNG, workers)
				dst := make([]byte, roundLen)
				b.SetBytes(int64(clients) * roundLen)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					clear(dst)
					pp.ServerPadInto(dst, seeds, uint64(i))
				}
			})
		}
	}
}

// BenchmarkClientSubmitSteadyState measures the steady-state client
// submit path — slot encode plus ciphertext build over prefetched
// streams — and asserts it allocation-free. Stream preparation happens
// off-timer, exactly as the engine does it during the idle window.
func BenchmarkClientSubmitSteadyState(b *testing.B) {
	const servers, slotLen, vecLen = 16, 1024, 4096
	seeds := paritySeeds(5, servers)
	pad := NewPad(crypto.NewAESPRNG)
	vec := make([]byte, vecLen)
	ct := make([]byte, vecLen)
	payload := SlotPayload{NextLen: slotLen, Data: make([]byte, slotLen-MinSlotLen)}
	rnd := crypto.NewFastPRNG(crypto.Hash("bench-rnd", nil)) // deterministic, alloc-free seed source
	b.SetBytes(vecLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ps := pad.Prepare(seeds, uint64(i)) // idle-window work
		b.StartTimer()
		if err := EncodeSlot(vec[:slotLen], payload, rnd); err != nil {
			b.Fatal(err)
		}
		ps.CiphertextInto(ct, vec)
	}
}

// BenchmarkSlotCodec isolates the OAEP-like slot mask.
func BenchmarkSlotCodec(b *testing.B) {
	const slotLen = 1024
	buf := make([]byte, slotLen)
	payload := SlotPayload{NextLen: slotLen, Data: make([]byte, slotLen-MinSlotLen)}
	rnd := crypto.NewFastPRNG(crypto.Hash("bench-rnd", nil))
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(slotLen)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := EncodeSlot(buf, payload, rnd); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := EncodeSlot(buf, payload, rnd); err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(slotLen)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := DecodeSlot(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRoundCriticalPath compares the server's submit→cleartext
// critical path before and after the streaming redesign, at 1024
// clients. "batch" is the old shape: all N ciphertext XORs plus the
// full N-stream pad expansion happen after the window closes. "stream"
// is the new shape: ciphertexts were accumulated as they arrived and
// the pad was prefetched during the window, so the critical path is
// one accumulator XOR plus the M-share combine.
func BenchmarkRoundCriticalPath(b *testing.B) {
	const clients, servers, roundLen = 1024, 4, 1024
	seeds := paritySeeds(2, clients)
	pad := NewPad(crypto.NewAESPRNG)
	cts := make([][]byte, clients)
	for i := range cts {
		cts[i] = make([]byte, roundLen)
		crypto.NewFastPRNG(crypto.HashUint64(uint64(i))).Read(cts[i])
	}
	shares := make([][]byte, servers)
	for j := range shares {
		shares[j] = make([]byte, roundLen)
		crypto.NewFastPRNG(crypto.HashUint64(uint64(1000 + j))).Read(shares[j])
	}

	b.Run("batch", func(b *testing.B) {
		out := make([]byte, roundLen)
		b.SetBytes(int64(clients) * roundLen)
		for i := 0; i < b.N; i++ {
			share := pad.ServerPad(seeds, uint64(i), roundLen)
			for _, ct := range cts {
				crypto.XORBytes(share, ct)
			}
			clear(out)
			crypto.XORBytes(out, share)
			for _, s := range shares {
				crypto.XORBytes(out, s)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		// Off the critical path (staged once): pad prefetched during the
		// window, ciphertexts accumulated as they arrived.
		pp := NewParallelPad(crypto.NewAESPRNG, 0)
		prefetch := make([]byte, roundLen)
		pp.ServerPadInto(prefetch, seeds, 1)
		acc := make([]byte, roundLen)
		for _, ct := range cts {
			crypto.XORBytes(acc, ct)
		}
		work := make([]byte, roundLen)
		out := make([]byte, roundLen)
		b.SetBytes(int64(clients) * roundLen)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The critical path after the last submission: fold the
			// accumulator into the prefetched pad, then the M-share
			// combine. (The copy stands in for taking the buffer.)
			copy(work, prefetch)
			crypto.XORBytes(work, acc)
			clear(out)
			crypto.XORBytes(out, work)
			for _, s := range shares {
				crypto.XORBytes(out, s)
			}
		}
	})
}

// TestClientSubmitPathZeroAlloc is the allocation guard behind the
// benchmark: slot encode + prefetched-stream ciphertext build must not
// allocate on the steady-state path.
func TestClientSubmitPathZeroAlloc(t *testing.T) {
	const servers, slotLen, vecLen = 8, 256, 1024
	seeds := paritySeeds(5, servers)
	pad := NewPad(crypto.NewAESPRNG)
	vec := make([]byte, vecLen)
	ct := make([]byte, vecLen)
	payload := SlotPayload{NextLen: slotLen, Data: make([]byte, slotLen-MinSlotLen)}
	rnd := crypto.NewFastPRNG(crypto.Hash("alloc-rnd", nil))

	const runs = 32
	streams := make([]*PadStreams, 0, runs+8)
	for i := 0; i < runs+8; i++ {
		streams = append(streams, pad.Prepare(seeds, uint64(i)))
	}
	var next int
	if avg := testing.AllocsPerRun(runs, func() {
		ps := streams[next]
		next++
		if err := EncodeSlot(vec[:slotLen], payload, rnd); err != nil {
			t.Fatal(err)
		}
		ps.CiphertextInto(ct, vec)
	}); avg != 0 {
		t.Fatalf("client submit path allocates %.1f times per op, want 0", avg)
	}
}

// TestServerPadParallelAllocSteadyState guards the server hot path:
// after the first round warms the lanes, parallel expansion allocates
// only the per-seed stream setup — no per-byte or per-lane churn.
func TestServerPadParallelAllocSteadyState(t *testing.T) {
	seeds := paritySeeds(6, 32)
	pp := NewParallelPad(crypto.NewAESPRNG, 4)
	dst := make([]byte, 2048)
	pp.ServerPadInto(dst, seeds, 0) // warm lanes
	perOp := testing.AllocsPerRun(16, func() {
		clear(dst)
		pp.ServerPadInto(dst, seeds, 1)
	})
	// One stream per seed costs a handful of allocations (hash, key
	// schedule, CTR state, goroutine bookkeeping); anything linear in
	// the vector length would blow well past this bound.
	if limit := float64(len(seeds)*8 + 64); perOp > limit {
		t.Fatalf("parallel pad allocates %.0f/op, want <= %.0f (stream setup only)", perOp, limit)
	}
}
