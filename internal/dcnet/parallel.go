package dcnet

import (
	"runtime"
	"sync"

	"dissent/internal/crypto"
)

// ParallelPad expands server pads across a bounded worker pool: the
// O(N·L) stream expansion of §3.4 is the server data plane's dominant
// cost, and it is embarrassingly parallel. Seeds are sharded across
// workers, each XOR-accumulating into a private lane buffer, followed
// by a parallel tree combine — XOR is associative and commutative, so
// the output is byte-identical to the serial Pad.ServerPadInto (the
// differential tests assert this).
//
// When there are fewer seeds than workers but a large vector (a small
// group moving bulk data), and the PRNG supports random access
// (crypto.SeekableStream, as the production AES-CTR stream does), the
// expander shards by byte range instead, keeping every core busy on
// disjoint regions of dst.
//
// A ParallelPad reuses its lane buffers across calls and is therefore
// NOT safe for concurrent use; give each concurrent caller (e.g. a
// background prefetcher) its own instance.
type ParallelPad struct {
	pad      *Pad
	workers  int
	seekable bool // the maker's streams support XORKeyStreamAt
	lanes    [][]byte
}

// rangeShardMin is the minimum per-worker byte range for range
// sharding — below this the goroutine handoff and the per-worker
// stream re-setup cost more than the expansion they parallelize.
const rangeShardMin = 4096

// NewParallelPad returns an expander over maker with the given worker
// bound (<= 0 selects GOMAXPROCS). Seekability is a static property of
// the maker, so it is probed once here rather than per round.
func NewParallelPad(maker crypto.PRNGMaker, workers int) *ParallelPad {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pad := NewPad(maker)
	_, seekable := pad.maker(make([]byte, 32)).(crypto.SeekableStream)
	return &ParallelPad{pad: pad, workers: workers, seekable: seekable}
}

// ServerPadInto XOR-accumulates one (seed, round) stream per client
// seed into dst, like Pad.ServerPadInto but sharded across the worker
// pool. dst is caller-owned; XOR semantics (dst need not be zero).
func (pp *ParallelPad) ServerPadInto(dst []byte, seeds [][]byte, round uint64) {
	if len(seeds) == 0 || len(dst) == 0 {
		return
	}
	// Fewer members than workers: seed sharding alone would leave
	// cores idle, so split the vector by byte range instead (seekable
	// streams only). Every worker re-derives every seed's key schedule,
	// so each worker's region must be large enough to amortize that —
	// hence the per-worker (not total) length floor.
	if len(seeds) < pp.workers && len(dst) >= pp.workers*rangeShardMin && pp.rangeShard(dst, seeds, round) {
		return
	}
	w := pp.workers
	if w > len(seeds) {
		w = len(seeds)
	}
	if w <= 1 {
		pp.pad.ServerPadInto(dst, seeds, round)
		return
	}

	// Seed sharding: worker k expands seeds [k*len/w, (k+1)*len/w) into
	// its private lane; lane 0 is dst itself (the caller owns it for the
	// duration of the call).
	lanes := pp.takeLanes(w-1, len(dst))
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := k*len(seeds)/w, (k+1)*len(seeds)/w
		lane := dst
		if k > 0 {
			lane = lanes[k-1]
		}
		wg.Add(1)
		go func(lane []byte, shard [][]byte) {
			defer wg.Done()
			pp.pad.ServerPadInto(lane, shard, round)
		}(lane, seeds[lo:hi])
	}
	wg.Wait()

	// Tree combine: fold lanes pairwise in log2(w) parallel passes.
	all := append([][]byte{dst}, lanes...)
	for gap := 1; gap < len(all); gap *= 2 {
		var cwg sync.WaitGroup
		for i := 0; i+gap < len(all); i += 2 * gap {
			cwg.Add(1)
			go func(a, b []byte) {
				defer cwg.Done()
				crypto.XORBytes(a, b)
			}(all[i], all[i+gap])
		}
		cwg.Wait()
	}
}

// rangeShard splits dst into one contiguous byte range per worker and
// expands every seed's stream at the matching offset via
// XORKeyStreamAt. Returns false when the PRNG is not seekable.
func (pp *ParallelPad) rangeShard(dst []byte, seeds [][]byte, round uint64) bool {
	if !pp.seekable {
		return false
	}
	w := pp.workers
	if w > (len(dst)+rangeShardMin-1)/rangeShardMin {
		w = (len(dst) + rangeShardMin - 1) / rangeShardMin
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo, hi := k*len(dst)/w, (k+1)*len(dst)/w
		wg.Add(1)
		go func(lo int, region []byte) {
			defer wg.Done()
			for _, seed := range seeds {
				s := pp.pad.maker(RoundSeed(seed, round)).(crypto.SeekableStream)
				s.XORKeyStreamAt(region, uint64(lo))
			}
		}(lo, dst[lo:hi])
	}
	wg.Wait()
	return true
}

// takeLanes returns n zeroed lane buffers of the given length, reusing
// prior allocations when the round vector size is stable.
func (pp *ParallelPad) takeLanes(n, length int) [][]byte {
	for len(pp.lanes) < n {
		pp.lanes = append(pp.lanes, nil)
	}
	lanes := pp.lanes[:n]
	for i := range lanes {
		if cap(lanes[i]) < length {
			lanes[i] = make([]byte, length)
			continue
		}
		lanes[i] = lanes[i][:length]
		clear(lanes[i])
	}
	return lanes
}
