// Package dcnet implements the DC-net layer of Dissent: the
// deterministic slot schedule S(r, π(i), H) derived from a verifiable
// shuffle and prior round outputs (§3.3, §3.8), OAEP-like unpredictable
// slot payloads (§3.9), client and server ciphertext pads built from
// pairwise client/server secrets (§3.4), and per-bit stream tracing for
// the accusation protocol (§3.9).
//
// The package is purely computational — no I/O. internal/core drives it
// with the round protocol.
package dcnet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dissent/internal/crypto"
)

// Config fixes the schedule parameters agreed at group creation.
type Config struct {
	// NumSlots is the number of pseudonym slots (one per client in the
	// shuffled schedule).
	NumSlots int
	// DefaultOpenLen is the slot length, in bytes, assigned when a
	// request bit opens a slot. Must be at least MinSlotLen.
	DefaultOpenLen int
	// MaxSlotLen caps a slot's self-requested length, bounding the
	// damage a malicious owner (or a disrupted length field) can do to
	// the round size.
	MaxSlotLen int
	// IdleCloseRounds closes a slot whose owner has produced all-zero
	// output for this many consecutive rounds (owner likely offline).
	IdleCloseRounds int
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: 1 KiB initial slots, 256 KiB cap (large enough for the
// 128 KB data-sharing scenario plus overhead), close after 4 idle
// rounds.
func DefaultConfig(numSlots int) Config {
	return Config{
		NumSlots:        numSlots,
		DefaultOpenLen:  1024,
		MaxSlotLen:      256 << 10,
		IdleCloseRounds: 4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumSlots <= 0:
		return errors.New("dcnet: NumSlots must be positive")
	case c.DefaultOpenLen < MinSlotLen:
		return fmt.Errorf("dcnet: DefaultOpenLen %d below minimum %d", c.DefaultOpenLen, MinSlotLen)
	case c.MaxSlotLen < c.DefaultOpenLen:
		return errors.New("dcnet: MaxSlotLen below DefaultOpenLen")
	case c.IdleCloseRounds <= 0:
		return errors.New("dcnet: IdleCloseRounds must be positive")
	}
	return nil
}

// Schedule tracks the per-slot state that determines each round's
// cleartext layout. All nodes advance identical Schedule replicas from
// identical round outputs, so the layout never needs negotiation.
//
// The layout orders slot message regions by a permutation that an
// epoch-rotation hook can re-derive every N rounds from shared
// randomness (the internal/beacon chain in production), so a slot's
// byte position in the round vector shifts unpredictably across epochs
// instead of being fixed for the session's lifetime.
type Schedule struct {
	cfg   Config
	round uint64
	lens  []int // current message-slot lengths, 0 = closed
	idle  []int // consecutive all-zero rounds per open slot

	perm []int // perm[position] = slot occupying that layout position
	pos  []int // pos[slot] = its layout position (inverse of perm)

	// Pipelined rounds: with lag λ > 0, the layout used for round k
	// incorporates only the deltas extracted from rounds ≤ k−1−λ, so a
	// participant can compose round k's vector before round k−1's
	// output is known. Advance still decodes each round's cleartext the
	// moment it certifies, but the per-slot directives it extracts are
	// queued in pending (FIFO, ≤ λ entries) and applied λ rounds later.
	// λ = 0 (the default) reproduces the serial semantics exactly.
	lag     int
	pending [][]slotDelta

	epochEvery uint64
	epochSeed  func(round uint64) []byte
}

// deltaOp classifies one slot's observational directive extracted from
// a decoded round.
type deltaOp uint8

const (
	dNone deltaOp = iota
	dOpen         // closed slot's request bit was set
	dIdle         // open slot produced idle output
	dHold         // open slot was garbled: hold length, reset idle
	dSet          // open slot set its next length (already clamped)
)

// slotDelta is one slot's directive. Directives are observational —
// extracted against the layout the round was decoded at — and guarded
// at application time (e.g. dOpen on an already-open slot is a no-op),
// so applying the queue in FIFO order is deterministic on every
// replica regardless of what happened in the lag gap.
type slotDelta struct {
	op deltaOp
	n  int // target length for dSet
}

// NewSchedule creates the round-0 schedule: all slots closed, identity
// slot order.
func NewSchedule(cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{
		cfg:  cfg,
		lens: make([]int, cfg.NumSlots),
		idle: make([]int, cfg.NumSlots),
	}
	s.setPerm(identityPerm(cfg.NumSlots))
	return s, nil
}

// SetEpochRotation installs the epoch hook: starting at each round
// that is a positive multiple of every, the slot permutation is
// re-derived from seed(round). All replicas must install equivalent
// hooks (same epoch length, same seed values) to stay in lockstep; a
// nil seed return (e.g. no beacon output available yet) keeps the
// current permutation, deterministically on every replica.
func (s *Schedule) SetEpochRotation(every uint64, seed func(round uint64) []byte) {
	s.epochEvery = every
	s.epochSeed = seed
}

// Permutation returns a copy of the current layout permutation:
// element p is the slot whose message region is laid out p-th.
func (s *Schedule) Permutation() []int {
	return append([]int(nil), s.perm...)
}

// setPerm installs a permutation and its inverse.
func (s *Schedule) setPerm(perm []int) {
	s.perm = perm
	if len(s.pos) != len(perm) {
		s.pos = make([]int, len(perm))
	}
	for p, slot := range perm {
		s.pos[slot] = p
	}
}

// identityPerm returns [0, 1, ..., n-1].
func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// PermFromSeed derives a permutation of n slots from a shared seed by
// a Fisher–Yates shuffle over an AES-CTR stream, with rejection
// sampling so every permutation is equally likely. Identical seeds
// yield identical permutations on every node.
func PermFromSeed(seed []byte, n int) []int {
	perm := identityPerm(n)
	stream := crypto.NewAESPRNG(crypto.Hash("dissent/epoch-perm", seed))
	var buf [4]byte
	for i := n - 1; i > 0; i-- {
		// Uniform j in [0, i] by rejection on the top of the range.
		bound := uint32(i + 1)
		limit := ^uint32(0) - ^uint32(0)%bound
		for {
			stream.Read(buf[:])
			v := binary.BigEndian.Uint32(buf[:])
			if v < limit {
				j := int(v % bound)
				perm[i], perm[j] = perm[j], perm[i]
				break
			}
		}
	}
	return perm
}

// Grow appends extra closed slots (membership churn: one per newly
// admitted member) and re-derives the layout permutation over the
// enlarged slot set from seed (nil keeps existing slots in place and
// appends the new ones at the end of the layout). Every replica must
// call Grow with identical arguments at the same round boundary — the
// engines do so when applying a certified roster update, seeding from
// the beacon output and the roster digest.
func (s *Schedule) Grow(extra int, seed []byte) {
	// Roster changes build on a settled layout: the engines drain the
	// round pipeline before applying a certified roster update, so any
	// still-queued deltas belong to rounds that have already certified
	// and are due — apply them now.
	s.FlushPipeline()
	if extra <= 0 {
		if seed != nil {
			s.setPerm(PermFromSeed(seed, s.cfg.NumSlots))
		}
		return
	}
	old := s.cfg.NumSlots
	s.cfg.NumSlots += extra
	s.lens = append(s.lens, make([]int, extra)...)
	s.idle = append(s.idle, make([]int, extra)...)
	if seed != nil {
		s.setPerm(PermFromSeed(seed, s.cfg.NumSlots))
		return
	}
	perm := append(append([]int(nil), s.perm...), identityPerm(s.cfg.NumSlots)[old:]...)
	s.setPerm(perm)
}

// Config returns the schedule's configuration.
func (s *Schedule) Config() Config { return s.cfg }

// Round returns the current round number.
func (s *Schedule) Round() uint64 { return s.round }

// NumSlots returns the slot count.
func (s *Schedule) NumSlots() int { return s.cfg.NumSlots }

// SlotLen returns slot i's current message length (0 when closed).
func (s *Schedule) SlotLen(i int) int { return s.lens[i] }

// reqBytes returns the size of the request-bit region.
func (s *Schedule) reqBytes() int { return (s.cfg.NumSlots + 7) / 8 }

// Len returns the total cleartext vector length for the current round.
func (s *Schedule) Len() int {
	n := s.reqBytes()
	for _, l := range s.lens {
		n += l
	}
	return n
}

// ReqBitRange returns the byte range holding the request bits.
func (s *Schedule) ReqBitRange() (off, n int) { return 0, s.reqBytes() }

// SlotRange returns the byte range of slot i's message region in the
// current round's cleartext vector. n is zero for closed slots.
// Message regions are laid out in permutation order; request bits stay
// indexed by slot.
func (s *Schedule) SlotRange(i int) (off, n int) {
	off = s.reqBytes()
	for p := 0; p < s.pos[i]; p++ {
		off += s.lens[s.perm[p]]
	}
	return off, s.lens[i]
}

// SetReqBit sets slot i's request bit in a cleartext-sized message
// vector (XOR semantics: writing 1 toggles the channel bit).
func (s *Schedule) SetReqBit(buf []byte, slot int, v bool) {
	if v {
		buf[slot/8] |= 1 << (uint(slot) % 8)
	}
}

// ReqBit reads slot i's request bit from a round's cleartext output.
func (s *Schedule) ReqBit(cleartext []byte, slot int) bool {
	return cleartext[slot/8]&(1<<(uint(slot)%8)) != 0
}

// RoundResult summarizes schedule transitions caused by one round's
// output.
type RoundResult struct {
	// Opened and Closed list slots that changed state for next round.
	Opened, Closed []int
	// ShuffleRequested is true when any open slot's shuffle-request
	// field was nonzero: the servers must run an accusation shuffle
	// before the next DC-net round (§3.9).
	ShuffleRequested bool
	// Rotated is true when this advance crossed an epoch boundary and
	// re-derived the slot permutation.
	Rotated bool
	// Payloads holds each open slot's decoded payload (nil entry for
	// closed or idle slots).
	Payloads []*SlotPayload
}

// Advance consumes round r's cleartext output, decodes every open
// slot, and moves the schedule to round r+1. Undecodable slots (owner
// disrupted or garbled) keep their length and count as idle; this is
// deliberate: a disruptor must not be able to collapse the schedule.
//
// The cleartext is always decoded against the applied layout (Len,
// SlotRange), which under pipelining is exactly the layout the round
// was composed at: the engines guarantee round r's vector is composed
// from the layout that excludes the deltas of the λ rounds still in
// flight, and those same λ deltas sit queued here when r certifies.
// The extracted directives are queued; the oldest queued delta is
// applied, moving the compose-side layout forward by one round.
func (s *Schedule) Advance(cleartext []byte) (*RoundResult, error) {
	if len(cleartext) != s.Len() {
		return nil, fmt.Errorf("dcnet: cleartext length %d, want %d", len(cleartext), s.Len())
	}
	res := &RoundResult{Payloads: make([]*SlotPayload, s.cfg.NumSlots)}
	delta := make([]slotDelta, s.cfg.NumSlots)
	for i := 0; i < s.cfg.NumSlots; i++ {
		off, n := s.SlotRange(i)
		if n == 0 {
			// Closed slot: a set request bit opens it next round.
			if s.ReqBit(cleartext, i) {
				delta[i] = slotDelta{op: dOpen}
			}
			continue
		}
		region := cleartext[off : off+n]
		payload, idle, err := DecodeSlot(region)
		switch {
		case idle:
			delta[i] = slotDelta{op: dIdle}
		case err != nil:
			// Garbled (possibly disrupted) slot: hold the length.
			delta[i] = slotDelta{op: dHold}
		default:
			res.Payloads[i] = payload
			if payload.ShuffleReq != 0 {
				res.ShuffleRequested = true
			}
			nl := payload.NextLen
			if nl != 0 && nl < MinSlotLen {
				nl = MinSlotLen
			}
			if nl > s.cfg.MaxSlotLen {
				nl = s.cfg.MaxSlotLen
			}
			delta[i] = slotDelta{op: dSet, n: nl}
		}
	}
	s.pending = append(s.pending, delta)
	if len(s.pending) > s.lag {
		s.popDelta(res)
	}
	s.round++
	if s.epochEvery > 0 && s.round%s.epochEvery == 0 && s.epochSeed != nil {
		if seed := s.epochSeed(s.round); seed != nil {
			s.setPerm(PermFromSeed(seed, s.cfg.NumSlots))
			res.Rotated = true
		}
	}
	return res, nil
}

// AdvanceFailed records a failed (uncertified) round: it contributes no
// directives, but the delta queue must stay aligned with round numbers
// so the decode layout for each later certified round is still the one
// it was composed at. A nil delta is queued and the oldest delta
// applied; the round counter does not move (failed rounds never reach
// Advance, so the counter only tracks certified outputs, exactly as in
// serial operation). With λ = 0 this is an exact no-op, so engines call
// it unconditionally on failed rounds.
func (s *Schedule) AdvanceFailed() {
	s.pending = append(s.pending, nil)
	if len(s.pending) > s.lag {
		s.popDelta(nil)
	}
}

// popDelta applies the oldest queued delta to the applied layout.
func (s *Schedule) popDelta(res *RoundResult) {
	d := s.pending[0]
	copy(s.pending, s.pending[1:])
	s.pending[len(s.pending)-1] = nil
	s.pending = s.pending[:len(s.pending)-1]
	s.applyDeltaTo(s.lens, s.idle, d, res)
}

// applyDeltaTo applies one round's directives to a lens/idle pair in
// place. Guards make directives observational: a directive that no
// longer matches the slot's state (opened or closed in the lag gap) is
// dropped, identically on every replica. res may be nil (ahead-view
// simulation, queue flush); when non-nil, Opened/Closed transitions are
// reported on it.
func (s *Schedule) applyDeltaTo(lens, idle []int, delta []slotDelta, res *RoundResult) {
	for i, d := range delta {
		switch d.op {
		case dOpen:
			if lens[i] != 0 {
				continue
			}
			lens[i] = s.cfg.DefaultOpenLen
			idle[i] = 0
			if res != nil {
				res.Opened = append(res.Opened, i)
			}
		case dIdle:
			if lens[i] == 0 {
				continue
			}
			idle[i]++
			if idle[i] >= s.cfg.IdleCloseRounds {
				lens[i] = 0
				idle[i] = 0
				if res != nil {
					res.Closed = append(res.Closed, i)
				}
			}
		case dHold:
			if lens[i] == 0 {
				continue
			}
			idle[i] = 0
		case dSet:
			if lens[i] == 0 {
				continue
			}
			idle[i] = 0
			lens[i] = d.n
			if d.n == 0 && res != nil {
				res.Closed = append(res.Closed, i)
			}
		}
	}
}

// SyncPipeline applies queued deltas, oldest first, until at most q
// remain. The engines call it immediately before decoding round r with
// q = min(λ, r − D), where D is the protocol's latest drain point (the
// session's first round, an epoch-boundary round, the resume round
// after an accusation shuffle): a drained pipeline restarts with one
// round in flight, so the first post-drain rounds were composed against
// a layout with fewer deltas withheld than the steady-state λ. Syncing
// to the per-round queue depth keeps the decode layout equal to the
// compose layout across drains; with a full pipeline (q = λ) and at
// λ = 0 it is a no-op.
func (s *Schedule) SyncPipeline(q int) {
	if q < 0 {
		q = 0
	}
	for len(s.pending) > q {
		s.popDelta(nil)
	}
}

// SetLag sets the pipeline lag λ: the layout used to compose round k
// excludes the directives of the λ most recent certified rounds, which
// is what lets λ+1 rounds be in flight at once. Any queued deltas are
// flushed first, so SetLag is only safe when no round is in flight.
// Every replica in a group must use the same lag.
func (s *Schedule) SetLag(lag int) {
	if lag < 0 {
		lag = 0
	}
	s.FlushPipeline()
	s.lag = lag
}

// Lag returns the pipeline lag.
func (s *Schedule) Lag() int { return s.lag }

// PendingDeltas returns the number of queued, not-yet-applied round
// deltas.
func (s *Schedule) PendingDeltas() int { return len(s.pending) }

// FlushPipeline applies every queued delta immediately, bringing the
// applied layout up to the ahead view. The engines call it (via Grow)
// when the pipeline has drained at an epoch boundary, so roster and
// permutation changes always build on a fully settled layout.
func (s *Schedule) FlushPipeline() {
	for _, d := range s.pending {
		s.applyDeltaTo(s.lens, s.idle, d, nil)
	}
	s.pending = s.pending[:0]
}

// simulatePending returns copies of lens/idle with every queued delta
// applied — the layout of the next round to be composed.
func (s *Schedule) simulatePending() (lens, idle []int) {
	return s.simulatePendingUpTo(len(s.pending))
}

// simulatePendingUpTo applies only the oldest k queued deltas: the
// compose-side layout at a bounded horizon. A freshly welcomed joiner
// composes its first round against fewer queued deltas than it holds
// (the donor captured them mid-pipeline), so compose views take an
// explicit horizon rather than always consuming the whole queue.
func (s *Schedule) simulatePendingUpTo(k int) (lens, idle []int) {
	lens = append([]int(nil), s.lens...)
	idle = append([]int(nil), s.idle...)
	if k > len(s.pending) {
		k = len(s.pending)
	}
	for _, d := range s.pending[:k] {
		s.applyDeltaTo(lens, idle, d, nil)
	}
	return lens, idle
}

// AheadLen returns the total cleartext vector length for the next
// round to be composed: the applied layout plus every queued delta.
// With an empty queue (always true at λ = 0) it equals Len.
func (s *Schedule) AheadLen() int {
	return s.AheadLenUpTo(len(s.pending))
}

// AheadLenUpTo is AheadLen at a bounded horizon: only the oldest k
// queued deltas are included.
func (s *Schedule) AheadLenUpTo(k int) int {
	if len(s.pending) == 0 || k <= 0 {
		return s.Len()
	}
	lens, _ := s.simulatePendingUpTo(k)
	n := s.reqBytes()
	for _, l := range lens {
		n += l
	}
	return n
}

// AheadSlotLen is SlotLen on the compose-side (ahead) view.
func (s *Schedule) AheadSlotLen(i int) int {
	return s.AheadSlotLenUpTo(i, len(s.pending))
}

// AheadSlotLenUpTo is AheadSlotLen at a bounded horizon.
func (s *Schedule) AheadSlotLenUpTo(i, k int) int {
	if len(s.pending) == 0 || k <= 0 {
		return s.lens[i]
	}
	lens, _ := s.simulatePendingUpTo(k)
	return lens[i]
}

// AheadSlotRange is SlotRange on the compose-side (ahead) view.
func (s *Schedule) AheadSlotRange(i int) (off, n int) {
	return s.AheadSlotRangeUpTo(i, len(s.pending))
}

// AheadSlotRangeUpTo is AheadSlotRange at a bounded horizon.
func (s *Schedule) AheadSlotRangeUpTo(i, k int) (off, n int) {
	if len(s.pending) == 0 || k <= 0 {
		return s.SlotRange(i)
	}
	lens, _ := s.simulatePendingUpTo(k)
	off = s.reqBytes()
	for p := 0; p < s.pos[i]; p++ {
		off += lens[s.perm[p]]
	}
	return off, lens[i]
}

// PendingSnapshot flattens the queued round deltas, oldest first, into
// parallel op and length rows of NumSlots entries each, completing the
// Snapshot state for a welcome captured mid-pipeline. A queued failed
// round (nil delta) becomes an all-zero row, which applies as the same
// no-op.
func (s *Schedule) PendingSnapshot() (ops, ns []int) {
	for _, row := range s.pending {
		o := make([]int, s.cfg.NumSlots)
		n := make([]int, s.cfg.NumSlots)
		for i, d := range row {
			o[i], n[i] = int(d.op), d.n
		}
		ops = append(ops, o...)
		ns = append(ns, n...)
	}
	return ops, ns
}

// RestorePending replaces the delta queue from a PendingSnapshot, the
// joiner-side inverse. Must be called before the restored schedule's
// first Advance.
func (s *Schedule) RestorePending(ops, ns []int) error {
	if len(ops) != len(ns) || len(ops)%s.cfg.NumSlots != 0 {
		return fmt.Errorf("dcnet: pending snapshot shape mismatch (%d ops, %d ns, %d slots)",
			len(ops), len(ns), s.cfg.NumSlots)
	}
	s.pending = s.pending[:0]
	for off := 0; off < len(ops); off += s.cfg.NumSlots {
		row := make([]slotDelta, s.cfg.NumSlots)
		for i := range row {
			op := ops[off+i]
			if op < int(dNone) || op > int(dSet) {
				return fmt.Errorf("dcnet: pending snapshot op %d invalid", op)
			}
			n := ns[off+i]
			if n < 0 || n > s.cfg.MaxSlotLen {
				return fmt.Errorf("dcnet: pending snapshot length %d invalid", n)
			}
			row[i] = slotDelta{op: deltaOp(op), n: n}
		}
		s.pending = append(s.pending, row)
	}
	return nil
}

// Snapshot returns the schedule's replicated state — round counter,
// slot lengths, idle counters, layout permutation — so an admitting
// server can hand a mid-session joiner an exact replica to resume from.
func (s *Schedule) Snapshot() (round uint64, lens, idle, perm []int) {
	return s.round,
		append([]int(nil), s.lens...),
		append([]int(nil), s.idle...),
		append([]int(nil), s.perm...)
}

// Digest hashes the schedule's full replicated state — round counter,
// slot lengths, idle counters, permutation, and the queued pipeline
// deltas. Replicas that processed the same certified outputs hold
// identical schedules and therefore equal digests; a client whose
// digest differs from its server's at the same replication point has
// silently diverged and must re-sync from a certified snapshot.
func (s *Schedule) Digest() [32]byte {
	buf := make([]byte, 0, 16+12*len(s.lens))
	buf = binary.BigEndian.AppendUint64(buf, s.round)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.lens)))
	for i := range s.lens {
		buf = binary.BigEndian.AppendUint32(buf, uint32(s.lens[i]))
		buf = binary.BigEndian.AppendUint32(buf, uint32(s.idle[i]))
		buf = binary.BigEndian.AppendUint32(buf, uint32(s.perm[i]))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.pending)))
	for _, row := range s.pending {
		for _, d := range row {
			buf = append(buf, byte(d.op))
			buf = binary.BigEndian.AppendUint32(buf, uint32(d.n))
		}
	}
	var d [32]byte
	copy(d[:], crypto.Hash("dissent/sched-digest", buf))
	return d
}

// RestoreSchedule rebuilds a schedule from a Snapshot, the joiner-side
// inverse. The config's NumSlots is overridden by the snapshot length.
func RestoreSchedule(cfg Config, round uint64, lens, idle, perm []int) (*Schedule, error) {
	cfg.NumSlots = len(lens)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(idle) != len(lens) || len(perm) != len(lens) {
		return nil, fmt.Errorf("dcnet: snapshot shape mismatch (%d lens, %d idle, %d perm)",
			len(lens), len(idle), len(perm))
	}
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			return nil, errors.New("dcnet: snapshot permutation invalid")
		}
		seen[v] = true
	}
	s := &Schedule{
		cfg:   cfg,
		round: round,
		lens:  append([]int(nil), lens...),
		idle:  append([]int(nil), idle...),
	}
	s.setPerm(append([]int(nil), perm...))
	return s, nil
}

// Clone returns an independent copy of the schedule, used by clients
// probing "what would the layout be if this round's output were X".
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{cfg: s.cfg, round: s.round, lag: s.lag,
		epochEvery: s.epochEvery, epochSeed: s.epochSeed}
	c.lens = append([]int(nil), s.lens...)
	c.idle = append([]int(nil), s.idle...)
	if len(s.pending) > 0 {
		c.pending = make([][]slotDelta, len(s.pending))
		for i, d := range s.pending {
			c.pending[i] = append([]slotDelta(nil), d...)
		}
	}
	c.setPerm(append([]int(nil), s.perm...))
	return c
}
