// Package dcnet implements the DC-net layer of Dissent: the
// deterministic slot schedule S(r, π(i), H) derived from a verifiable
// shuffle and prior round outputs (§3.3, §3.8), OAEP-like unpredictable
// slot payloads (§3.9), client and server ciphertext pads built from
// pairwise client/server secrets (§3.4), and per-bit stream tracing for
// the accusation protocol (§3.9).
//
// The package is purely computational — no I/O. internal/core drives it
// with the round protocol.
package dcnet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dissent/internal/crypto"
)

// Config fixes the schedule parameters agreed at group creation.
type Config struct {
	// NumSlots is the number of pseudonym slots (one per client in the
	// shuffled schedule).
	NumSlots int
	// DefaultOpenLen is the slot length, in bytes, assigned when a
	// request bit opens a slot. Must be at least MinSlotLen.
	DefaultOpenLen int
	// MaxSlotLen caps a slot's self-requested length, bounding the
	// damage a malicious owner (or a disrupted length field) can do to
	// the round size.
	MaxSlotLen int
	// IdleCloseRounds closes a slot whose owner has produced all-zero
	// output for this many consecutive rounds (owner likely offline).
	IdleCloseRounds int
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: 1 KiB initial slots, 256 KiB cap (large enough for the
// 128 KB data-sharing scenario plus overhead), close after 4 idle
// rounds.
func DefaultConfig(numSlots int) Config {
	return Config{
		NumSlots:        numSlots,
		DefaultOpenLen:  1024,
		MaxSlotLen:      256 << 10,
		IdleCloseRounds: 4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumSlots <= 0:
		return errors.New("dcnet: NumSlots must be positive")
	case c.DefaultOpenLen < MinSlotLen:
		return fmt.Errorf("dcnet: DefaultOpenLen %d below minimum %d", c.DefaultOpenLen, MinSlotLen)
	case c.MaxSlotLen < c.DefaultOpenLen:
		return errors.New("dcnet: MaxSlotLen below DefaultOpenLen")
	case c.IdleCloseRounds <= 0:
		return errors.New("dcnet: IdleCloseRounds must be positive")
	}
	return nil
}

// Schedule tracks the per-slot state that determines each round's
// cleartext layout. All nodes advance identical Schedule replicas from
// identical round outputs, so the layout never needs negotiation.
//
// The layout orders slot message regions by a permutation that an
// epoch-rotation hook can re-derive every N rounds from shared
// randomness (the internal/beacon chain in production), so a slot's
// byte position in the round vector shifts unpredictably across epochs
// instead of being fixed for the session's lifetime.
type Schedule struct {
	cfg   Config
	round uint64
	lens  []int // current message-slot lengths, 0 = closed
	idle  []int // consecutive all-zero rounds per open slot

	perm []int // perm[position] = slot occupying that layout position
	pos  []int // pos[slot] = its layout position (inverse of perm)

	epochEvery uint64
	epochSeed  func(round uint64) []byte
}

// NewSchedule creates the round-0 schedule: all slots closed, identity
// slot order.
func NewSchedule(cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{
		cfg:  cfg,
		lens: make([]int, cfg.NumSlots),
		idle: make([]int, cfg.NumSlots),
	}
	s.setPerm(identityPerm(cfg.NumSlots))
	return s, nil
}

// SetEpochRotation installs the epoch hook: starting at each round
// that is a positive multiple of every, the slot permutation is
// re-derived from seed(round). All replicas must install equivalent
// hooks (same epoch length, same seed values) to stay in lockstep; a
// nil seed return (e.g. no beacon output available yet) keeps the
// current permutation, deterministically on every replica.
func (s *Schedule) SetEpochRotation(every uint64, seed func(round uint64) []byte) {
	s.epochEvery = every
	s.epochSeed = seed
}

// Permutation returns a copy of the current layout permutation:
// element p is the slot whose message region is laid out p-th.
func (s *Schedule) Permutation() []int {
	return append([]int(nil), s.perm...)
}

// setPerm installs a permutation and its inverse.
func (s *Schedule) setPerm(perm []int) {
	s.perm = perm
	if len(s.pos) != len(perm) {
		s.pos = make([]int, len(perm))
	}
	for p, slot := range perm {
		s.pos[slot] = p
	}
}

// identityPerm returns [0, 1, ..., n-1].
func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// PermFromSeed derives a permutation of n slots from a shared seed by
// a Fisher–Yates shuffle over an AES-CTR stream, with rejection
// sampling so every permutation is equally likely. Identical seeds
// yield identical permutations on every node.
func PermFromSeed(seed []byte, n int) []int {
	perm := identityPerm(n)
	stream := crypto.NewAESPRNG(crypto.Hash("dissent/epoch-perm", seed))
	var buf [4]byte
	for i := n - 1; i > 0; i-- {
		// Uniform j in [0, i] by rejection on the top of the range.
		bound := uint32(i + 1)
		limit := ^uint32(0) - ^uint32(0)%bound
		for {
			stream.Read(buf[:])
			v := binary.BigEndian.Uint32(buf[:])
			if v < limit {
				j := int(v % bound)
				perm[i], perm[j] = perm[j], perm[i]
				break
			}
		}
	}
	return perm
}

// Grow appends extra closed slots (membership churn: one per newly
// admitted member) and re-derives the layout permutation over the
// enlarged slot set from seed (nil keeps existing slots in place and
// appends the new ones at the end of the layout). Every replica must
// call Grow with identical arguments at the same round boundary — the
// engines do so when applying a certified roster update, seeding from
// the beacon output and the roster digest.
func (s *Schedule) Grow(extra int, seed []byte) {
	if extra <= 0 {
		if seed != nil {
			s.setPerm(PermFromSeed(seed, s.cfg.NumSlots))
		}
		return
	}
	old := s.cfg.NumSlots
	s.cfg.NumSlots += extra
	s.lens = append(s.lens, make([]int, extra)...)
	s.idle = append(s.idle, make([]int, extra)...)
	if seed != nil {
		s.setPerm(PermFromSeed(seed, s.cfg.NumSlots))
		return
	}
	perm := append(append([]int(nil), s.perm...), identityPerm(s.cfg.NumSlots)[old:]...)
	s.setPerm(perm)
}

// Config returns the schedule's configuration.
func (s *Schedule) Config() Config { return s.cfg }

// Round returns the current round number.
func (s *Schedule) Round() uint64 { return s.round }

// NumSlots returns the slot count.
func (s *Schedule) NumSlots() int { return s.cfg.NumSlots }

// SlotLen returns slot i's current message length (0 when closed).
func (s *Schedule) SlotLen(i int) int { return s.lens[i] }

// reqBytes returns the size of the request-bit region.
func (s *Schedule) reqBytes() int { return (s.cfg.NumSlots + 7) / 8 }

// Len returns the total cleartext vector length for the current round.
func (s *Schedule) Len() int {
	n := s.reqBytes()
	for _, l := range s.lens {
		n += l
	}
	return n
}

// ReqBitRange returns the byte range holding the request bits.
func (s *Schedule) ReqBitRange() (off, n int) { return 0, s.reqBytes() }

// SlotRange returns the byte range of slot i's message region in the
// current round's cleartext vector. n is zero for closed slots.
// Message regions are laid out in permutation order; request bits stay
// indexed by slot.
func (s *Schedule) SlotRange(i int) (off, n int) {
	off = s.reqBytes()
	for p := 0; p < s.pos[i]; p++ {
		off += s.lens[s.perm[p]]
	}
	return off, s.lens[i]
}

// SetReqBit sets slot i's request bit in a cleartext-sized message
// vector (XOR semantics: writing 1 toggles the channel bit).
func (s *Schedule) SetReqBit(buf []byte, slot int, v bool) {
	if v {
		buf[slot/8] |= 1 << (uint(slot) % 8)
	}
}

// ReqBit reads slot i's request bit from a round's cleartext output.
func (s *Schedule) ReqBit(cleartext []byte, slot int) bool {
	return cleartext[slot/8]&(1<<(uint(slot)%8)) != 0
}

// RoundResult summarizes schedule transitions caused by one round's
// output.
type RoundResult struct {
	// Opened and Closed list slots that changed state for next round.
	Opened, Closed []int
	// ShuffleRequested is true when any open slot's shuffle-request
	// field was nonzero: the servers must run an accusation shuffle
	// before the next DC-net round (§3.9).
	ShuffleRequested bool
	// Rotated is true when this advance crossed an epoch boundary and
	// re-derived the slot permutation.
	Rotated bool
	// Payloads holds each open slot's decoded payload (nil entry for
	// closed or idle slots).
	Payloads []*SlotPayload
}

// Advance consumes round r's cleartext output, decodes every open
// slot, and moves the schedule to round r+1. Undecodable slots (owner
// disrupted or garbled) keep their length and count as idle; this is
// deliberate: a disruptor must not be able to collapse the schedule.
func (s *Schedule) Advance(cleartext []byte) (*RoundResult, error) {
	if len(cleartext) != s.Len() {
		return nil, fmt.Errorf("dcnet: cleartext length %d, want %d", len(cleartext), s.Len())
	}
	res := &RoundResult{Payloads: make([]*SlotPayload, s.cfg.NumSlots)}
	next := make([]int, s.cfg.NumSlots)
	for i := 0; i < s.cfg.NumSlots; i++ {
		off, n := s.SlotRange(i)
		if n == 0 {
			// Closed slot: a set request bit opens it next round.
			if s.ReqBit(cleartext, i) {
				next[i] = s.cfg.DefaultOpenLen
				s.idle[i] = 0
				res.Opened = append(res.Opened, i)
			}
			continue
		}
		region := cleartext[off : off+n]
		payload, idle, err := DecodeSlot(region)
		switch {
		case idle:
			s.idle[i]++
			if s.idle[i] >= s.cfg.IdleCloseRounds {
				next[i] = 0
				s.idle[i] = 0
				res.Closed = append(res.Closed, i)
			} else {
				next[i] = n
			}
		case err != nil:
			// Garbled (possibly disrupted) slot: hold the length.
			s.idle[i] = 0
			next[i] = n
		default:
			s.idle[i] = 0
			res.Payloads[i] = payload
			if payload.ShuffleReq != 0 {
				res.ShuffleRequested = true
			}
			nl := payload.NextLen
			if nl != 0 && nl < MinSlotLen {
				nl = MinSlotLen
			}
			if nl > s.cfg.MaxSlotLen {
				nl = s.cfg.MaxSlotLen
			}
			next[i] = nl
			if nl == 0 {
				res.Closed = append(res.Closed, i)
			}
		}
	}
	s.lens = next
	s.round++
	if s.epochEvery > 0 && s.round%s.epochEvery == 0 && s.epochSeed != nil {
		if seed := s.epochSeed(s.round); seed != nil {
			s.setPerm(PermFromSeed(seed, s.cfg.NumSlots))
			res.Rotated = true
		}
	}
	return res, nil
}

// Snapshot returns the schedule's replicated state — round counter,
// slot lengths, idle counters, layout permutation — so an admitting
// server can hand a mid-session joiner an exact replica to resume from.
func (s *Schedule) Snapshot() (round uint64, lens, idle, perm []int) {
	return s.round,
		append([]int(nil), s.lens...),
		append([]int(nil), s.idle...),
		append([]int(nil), s.perm...)
}

// RestoreSchedule rebuilds a schedule from a Snapshot, the joiner-side
// inverse. The config's NumSlots is overridden by the snapshot length.
func RestoreSchedule(cfg Config, round uint64, lens, idle, perm []int) (*Schedule, error) {
	cfg.NumSlots = len(lens)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(idle) != len(lens) || len(perm) != len(lens) {
		return nil, fmt.Errorf("dcnet: snapshot shape mismatch (%d lens, %d idle, %d perm)",
			len(lens), len(idle), len(perm))
	}
	seen := make([]bool, len(perm))
	for _, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			return nil, errors.New("dcnet: snapshot permutation invalid")
		}
		seen[v] = true
	}
	s := &Schedule{
		cfg:   cfg,
		round: round,
		lens:  append([]int(nil), lens...),
		idle:  append([]int(nil), idle...),
	}
	s.setPerm(append([]int(nil), perm...))
	return s, nil
}

// Clone returns an independent copy of the schedule, used by clients
// probing "what would the layout be if this round's output were X".
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{cfg: s.cfg, round: s.round,
		epochEvery: s.epochEvery, epochSeed: s.epochSeed}
	c.lens = append([]int(nil), s.lens...)
	c.idle = append([]int(nil), s.idle...)
	c.setPerm(append([]int(nil), s.perm...))
	return c
}
