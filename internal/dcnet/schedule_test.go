package dcnet

import (
	"testing"
)

func mustSchedule(t *testing.T, cfg Config) *Schedule {
	t.Helper()
	s, err := NewSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(4)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{NumSlots: 0, DefaultOpenLen: 64, MaxSlotLen: 128, IdleCloseRounds: 1},
		{NumSlots: 4, DefaultOpenLen: 3, MaxSlotLen: 128, IdleCloseRounds: 1},
		{NumSlots: 4, DefaultOpenLen: 64, MaxSlotLen: 32, IdleCloseRounds: 1},
		{NumSlots: 4, DefaultOpenLen: 64, MaxSlotLen: 128, IdleCloseRounds: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(100).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleInitialLayout(t *testing.T) {
	s := mustSchedule(t, testConfig(10))
	if s.Len() != 2 { // ceil(10/8) request bytes, all slots closed
		t.Errorf("initial length %d, want 2", s.Len())
	}
	off, n := s.ReqBitRange()
	if off != 0 || n != 2 {
		t.Errorf("req bit range (%d,%d)", off, n)
	}
	for i := 0; i < 10; i++ {
		if _, n := s.SlotRange(i); n != 0 {
			t.Errorf("slot %d open at start", i)
		}
	}
}

func TestScheduleOpenViaRequestBit(t *testing.T) {
	s := mustSchedule(t, testConfig(4))
	buf := make([]byte, s.Len())
	s.SetReqBit(buf, 2, true)
	res, err := s.Advance(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Opened) != 1 || res.Opened[0] != 2 {
		t.Fatalf("Opened = %v, want [2]", res.Opened)
	}
	if s.SlotLen(2) != 64 {
		t.Errorf("slot 2 length %d, want 64", s.SlotLen(2))
	}
	if s.Round() != 1 {
		t.Errorf("round %d, want 1", s.Round())
	}
	// Layout: reqBits(1) + slot2(64).
	if s.Len() != 1+64 {
		t.Errorf("round-1 length %d, want 65", s.Len())
	}
	off, n := s.SlotRange(2)
	if off != 1 || n != 64 {
		t.Errorf("slot 2 range (%d,%d), want (1,64)", off, n)
	}
}

func TestScheduleResizeAndClose(t *testing.T) {
	s := mustSchedule(t, testConfig(2))
	// Open slot 0.
	buf := make([]byte, s.Len())
	s.SetReqBit(buf, 0, true)
	if _, err := s.Advance(buf); err != nil {
		t.Fatal(err)
	}
	// Send a payload asking for a bigger slot next round.
	buf = make([]byte, s.Len())
	off, n := s.SlotRange(0)
	if err := EncodeSlot(buf[off:off+n], SlotPayload{NextLen: 200, Data: []byte("x")}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := s.Advance(buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payloads[0] == nil || string(res.Payloads[0].Data) != "x" {
		t.Fatal("payload not decoded")
	}
	if s.SlotLen(0) != 200 {
		t.Errorf("slot resized to %d, want 200", s.SlotLen(0))
	}
	// Now close it with NextLen 0.
	buf = make([]byte, s.Len())
	off, n = s.SlotRange(0)
	if err := EncodeSlot(buf[off:off+n], SlotPayload{NextLen: 0}, nil); err != nil {
		t.Fatal(err)
	}
	res, err = s.Advance(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Closed) != 1 || res.Closed[0] != 0 {
		t.Errorf("Closed = %v, want [0]", res.Closed)
	}
	if s.SlotLen(0) != 0 {
		t.Error("slot still open after close request")
	}
}

func TestScheduleClampsNextLen(t *testing.T) {
	cfg := testConfig(1)
	s := mustSchedule(t, cfg)
	buf := make([]byte, s.Len())
	s.SetReqBit(buf, 0, true)
	s.Advance(buf)

	// Ask for far more than MaxSlotLen.
	buf = make([]byte, s.Len())
	off, n := s.SlotRange(0)
	EncodeSlot(buf[off:off+n], SlotPayload{NextLen: 1 << 20}, nil)
	s.Advance(buf)
	if s.SlotLen(0) != cfg.MaxSlotLen {
		t.Errorf("slot length %d, want clamped to %d", s.SlotLen(0), cfg.MaxSlotLen)
	}

	// Ask for a tiny nonzero length: clamped up to MinSlotLen.
	buf = make([]byte, s.Len())
	off, n = s.SlotRange(0)
	EncodeSlot(buf[off:off+n], SlotPayload{NextLen: 3}, nil)
	s.Advance(buf)
	if s.SlotLen(0) != MinSlotLen {
		t.Errorf("slot length %d, want %d", s.SlotLen(0), MinSlotLen)
	}
}

func TestScheduleIdleClose(t *testing.T) {
	cfg := testConfig(1) // IdleCloseRounds = 3
	s := mustSchedule(t, cfg)
	buf := make([]byte, s.Len())
	s.SetReqBit(buf, 0, true)
	s.Advance(buf)

	for i := 0; i < 2; i++ {
		res, err := s.Advance(make([]byte, s.Len()))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Closed) != 0 {
			t.Fatalf("slot closed after %d idle rounds, want 3", i+1)
		}
	}
	res, err := s.Advance(make([]byte, s.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Closed) != 1 {
		t.Error("slot not closed after IdleCloseRounds idle rounds")
	}
}

func TestScheduleIdleResetOnActivity(t *testing.T) {
	s := mustSchedule(t, testConfig(1))
	buf := make([]byte, s.Len())
	s.SetReqBit(buf, 0, true)
	s.Advance(buf)

	// Two idle rounds, then activity, then two more idle: must stay open.
	s.Advance(make([]byte, s.Len()))
	s.Advance(make([]byte, s.Len()))
	buf = make([]byte, s.Len())
	off, n := s.SlotRange(0)
	EncodeSlot(buf[off:off+n], SlotPayload{NextLen: 64}, nil)
	s.Advance(buf)
	s.Advance(make([]byte, s.Len()))
	res, _ := s.Advance(make([]byte, s.Len()))
	if len(res.Closed) != 0 {
		t.Error("idle counter not reset by activity")
	}
}

func TestScheduleShuffleRequestDetected(t *testing.T) {
	s := mustSchedule(t, testConfig(1))
	buf := make([]byte, s.Len())
	s.SetReqBit(buf, 0, true)
	s.Advance(buf)

	buf = make([]byte, s.Len())
	off, n := s.SlotRange(0)
	EncodeSlot(buf[off:off+n], SlotPayload{NextLen: 64, ShuffleReq: 0xA7}, nil)
	res, err := s.Advance(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ShuffleRequested {
		t.Error("nonzero shuffle-request field not detected")
	}
}

func TestScheduleAdvanceWrongLength(t *testing.T) {
	s := mustSchedule(t, testConfig(4))
	if _, err := s.Advance(make([]byte, s.Len()+1)); err == nil {
		t.Error("wrong-length cleartext accepted")
	}
}

func TestScheduleDeterministicReplicas(t *testing.T) {
	// Two replicas fed identical cleartexts must stay identical — the
	// property that lets every node derive the layout independently.
	a := mustSchedule(t, testConfig(3))
	b := mustSchedule(t, testConfig(3))
	buf := make([]byte, a.Len())
	a.SetReqBit(buf, 1, true)
	a.Advance(buf)
	b.Advance(buf)
	for r := 0; r < 5; r++ {
		if a.Len() != b.Len() {
			t.Fatal("replicas diverged in layout")
		}
		buf = make([]byte, a.Len())
		off, n := a.SlotRange(1)
		if n > 0 {
			EncodeSlot(buf[off:off+n], SlotPayload{NextLen: 64 + r}, nil)
		}
		a.Advance(buf)
		b.Advance(buf)
		for i := 0; i < 3; i++ {
			if a.SlotLen(i) != b.SlotLen(i) {
				t.Fatal("replicas diverged in slot lengths")
			}
		}
	}
}

func TestScheduleClone(t *testing.T) {
	s := mustSchedule(t, testConfig(2))
	buf := make([]byte, s.Len())
	s.SetReqBit(buf, 0, true)
	s.Advance(buf)
	c := s.Clone()
	// Mutating the clone must not affect the original.
	c.Advance(make([]byte, c.Len()))
	if s.Round() == c.Round() {
		t.Error("clone shares state with original")
	}
}

func TestScheduleGarbledSlotHoldsLength(t *testing.T) {
	s := mustSchedule(t, testConfig(1))
	buf := make([]byte, s.Len())
	s.SetReqBit(buf, 0, true)
	s.Advance(buf)
	want := s.SlotLen(0)

	// Craft a garbled slot: nonzero seed, body decoding to an
	// impossible data length. Random garbage usually decodes to *some*
	// payload; to force the error path deterministically, encode a
	// valid slot then corrupt the masked DataLen bytes to 0xFFFF.
	buf = make([]byte, s.Len())
	off, _ := s.SlotRange(0)
	EncodeSlot(buf[off:off+want], SlotPayload{}, nil)
	// Flip DataLen (body bytes 5:7) to huge by XORing mask output: we
	// don't know the mask, so instead overwrite with values that decode
	// to dataLen > capacity with probability 1 by brute force: try all
	// 256*256 combos until DecodeSlot errors.
	forced := false
	region := buf[off : off+want]
	for hi := 0; hi < 256 && !forced; hi++ {
		for lo := 0; lo < 256 && !forced; lo++ {
			region[SeedLen+5] = byte(hi) | 0x80 // force a huge DataLen
			region[SeedLen+6] = byte(lo)
			if _, idle, err := DecodeSlot(region); err != nil && !idle {
				forced = true
			}
		}
	}
	if !forced {
		t.Skip("could not force a garbled slot")
	}
	res, err := s.Advance(buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payloads[0] != nil {
		t.Error("garbled slot produced a payload")
	}
	if s.SlotLen(0) != want {
		t.Errorf("garbled slot length changed: %d -> %d", want, s.SlotLen(0))
	}
}

// --- Epoch rotation ----------------------------------------------------

func TestPermFromSeedDeterministicAndValid(t *testing.T) {
	seed := []byte("beacon value for epoch 3")
	a := PermFromSeed(seed, 17)
	b := PermFromSeed(seed, 17)
	if len(a) != 17 {
		t.Fatalf("perm length %d", len(a))
	}
	seen := make([]bool, 17)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different permutations")
		}
		if a[i] < 0 || a[i] >= 17 || seen[a[i]] {
			t.Fatalf("not a permutation: %v", a)
		}
		seen[a[i]] = true
	}
	c := PermFromSeed([]byte("a different beacon value"), 17)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the same permutation")
	}
}

// openAll opens every slot and returns the post-open schedule.
func openAll(t *testing.T, s *Schedule) {
	t.Helper()
	buf := make([]byte, s.Len())
	for i := 0; i < s.NumSlots(); i++ {
		s.SetReqBit(buf, i, true)
	}
	if _, err := s.Advance(buf); err != nil {
		t.Fatal(err)
	}
}

func TestEpochRotationChangesLayout(t *testing.T) {
	const slots = 12 // 1/12! identity chance: assertions are stable
	cfg := testConfig(slots)
	s := mustSchedule(t, cfg)
	var seeds []uint64
	s.SetEpochRotation(3, func(round uint64) []byte {
		seeds = append(seeds, round)
		return []byte{byte(round)}
	})
	openAll(t, s) // round 0 -> 1: no boundary
	if len(seeds) != 0 {
		t.Fatal("rotated off-boundary")
	}
	before := s.Permutation()
	offBefore := make([]int, slots)
	for i := range offBefore {
		offBefore[i], _ = s.SlotRange(i)
	}

	// Advance across the round-3 boundary with idle (undecodable) slot
	// contents: lengths hold, only the permutation may change.
	for r := uint64(1); r < 3; r++ {
		res, err := s.Advance(make([]byte, s.Len()))
		if err != nil {
			t.Fatal(err)
		}
		wantRot := s.Round() == 3
		if res.Rotated != wantRot {
			t.Fatalf("round %d: Rotated = %v", s.Round(), res.Rotated)
		}
	}
	if len(seeds) != 1 || seeds[0] != 3 {
		t.Fatalf("seed hook calls %v, want [3]", seeds)
	}
	after := s.Permutation()
	changed := false
	for i := range after {
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("permutation unchanged at epoch boundary (vanishingly unlikely)")
	}
	// Total layout length is permutation-invariant; offsets move.
	offChanged := false
	for i := range offBefore {
		if off, _ := s.SlotRange(i); off != offBefore[i] {
			offChanged = true
		}
	}
	if !offChanged {
		t.Fatal("slot offsets unchanged after rotation")
	}
}

func TestEpochRotationNilSeedKeepsPerm(t *testing.T) {
	s := mustSchedule(t, testConfig(5))
	s.SetEpochRotation(1, func(round uint64) []byte { return nil })
	openAll(t, s)
	res, err := s.Advance(make([]byte, s.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rotated {
		t.Fatal("rotated despite nil seed")
	}
	perm := s.Permutation()
	for i, v := range perm {
		if v != i {
			t.Fatalf("identity permutation disturbed: %v", perm)
		}
	}
}

func TestPermutedLayoutRoundTripsPayloads(t *testing.T) {
	cfg := testConfig(4)
	s := mustSchedule(t, cfg)
	s.SetEpochRotation(2, func(round uint64) []byte { return []byte("rot") })
	openAll(t, s)
	if _, err := s.Advance(make([]byte, s.Len())); err != nil { // crosses boundary
		t.Fatal(err)
	}

	// Write a payload into slot 2's permuted range and advance: the
	// decoded payload must come back attributed to slot 2.
	buf := make([]byte, s.Len())
	off, n := s.SlotRange(2)
	payload := SlotPayload{Data: []byte("hello"), NextLen: n}
	if err := EncodeSlot(buf[off:off+n], payload, nil); err != nil {
		t.Fatal(err)
	}
	res, err := s.Advance(buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Payloads[2] == nil || string(res.Payloads[2].Data) != "hello" {
		t.Fatalf("slot 2 payload lost under permuted layout: %+v", res.Payloads)
	}
	for i, p := range res.Payloads {
		if i != 2 && p != nil {
			t.Fatalf("payload misattributed to slot %d", i)
		}
	}
}

func TestCloneCarriesPermutation(t *testing.T) {
	s := mustSchedule(t, testConfig(5))
	s.SetEpochRotation(1, func(round uint64) []byte { return []byte("x") })
	openAll(t, s) // round 1: rotates
	c := s.Clone()
	cp, sp := c.Permutation(), s.Permutation()
	for i := range sp {
		if cp[i] != sp[i] {
			t.Fatal("clone lost permutation")
		}
	}
	for i := 0; i < 5; i++ {
		so, sn := s.SlotRange(i)
		co, cn := c.SlotRange(i)
		if so != co || sn != cn {
			t.Fatalf("clone layout differs at slot %d", i)
		}
	}
}

func TestGrowAppendsSlotsAndReseeds(t *testing.T) {
	s := mustSchedule(t, testConfig(4))
	openAll(t, s)
	s.Grow(2, []byte("roster-seed"))
	if s.NumSlots() != 6 {
		t.Fatalf("NumSlots %d after Grow, want 6", s.NumSlots())
	}
	// New slots are closed at birth and carry request bits.
	for i := 4; i < 6; i++ {
		if s.SlotLen(i) != 0 {
			t.Fatalf("new slot %d open at birth", i)
		}
	}
	// The permutation covers all six slots exactly once.
	perm := s.Permutation()
	seen := make(map[int]bool)
	for _, v := range perm {
		if v < 0 || v >= 6 || seen[v] {
			t.Fatalf("invalid permutation after Grow: %v", perm)
		}
		seen[v] = true
	}
	// Identical Grow calls on a replica converge to the same layout.
	r := mustSchedule(t, testConfig(4))
	openAll(t, r)
	r.Grow(2, []byte("roster-seed"))
	rp := r.Permutation()
	for i := range perm {
		if rp[i] != perm[i] {
			t.Fatalf("replica permutation diverged: %v vs %v", rp, perm)
		}
	}
	// A grown schedule still advances (new slots open via request bits).
	buf := make([]byte, s.Len())
	s.SetReqBit(buf, 5, true)
	res, err := s.Advance(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Opened) != 1 || res.Opened[0] != 5 {
		t.Fatalf("request bit did not open the appended slot: %+v", res.Opened)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := mustSchedule(t, testConfig(5))
	s.SetEpochRotation(1, func(round uint64) []byte { return []byte("x") })
	openAll(t, s) // round 1, rotated permutation
	round, lens, idle, perm := s.Snapshot()
	r, err := RestoreSchedule(s.Config(), round, lens, idle, perm)
	if err != nil {
		t.Fatal(err)
	}
	if r.Round() != s.Round() || r.Len() != s.Len() {
		t.Fatalf("restored round/len %d/%d, want %d/%d", r.Round(), r.Len(), s.Round(), s.Len())
	}
	for i := 0; i < s.NumSlots(); i++ {
		so, sn := s.SlotRange(i)
		ro, rn := r.SlotRange(i)
		if so != ro || sn != rn {
			t.Fatalf("restored layout differs at slot %d", i)
		}
	}
	// Malformed snapshots are rejected.
	if _, err := RestoreSchedule(s.Config(), round, lens, idle[:2], perm); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	badPerm := append([]int(nil), perm...)
	badPerm[0] = badPerm[1]
	if _, err := RestoreSchedule(s.Config(), round, lens, idle, badPerm); err == nil {
		t.Fatal("invalid permutation accepted")
	}
}
