package dcnet

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"dissent/internal/crypto"
)

// paritySeeds builds n deterministic pair seeds keyed by a tag byte.
func paritySeeds(tag byte, n int) [][]byte {
	seeds := make([][]byte, n)
	for i := range seeds {
		seeds[i] = crypto.Hash("parity", []byte{tag}, crypto.HashUint64(uint64(i)))
	}
	return seeds
}

func TestParallelPadMatchesSerial(t *testing.T) {
	for name, maker := range map[string]crypto.PRNGMaker{"aes": crypto.NewAESPRNG, "fast": crypto.NewFastPRNG} {
		t.Run(name, func(t *testing.T) {
			for _, tc := range []struct {
				seeds, length, workers int
			}{
				{0, 64, 4}, {1, 64, 4}, {2, 33, 2}, {7, 1, 8},
				{16, 1024, 1}, {16, 1024, 3}, {16, 1024, 8}, {16, 1024, 16},
				{3, 64 << 10, 8}, // fewer seeds than workers + big vector: range shard
				{3, 8192, 8},     // same shape but below the per-worker floor: seed shard
				{100, 4099, 5},   // odd length, uneven shards
			} {
				seeds := paritySeeds(byte(tc.seeds), tc.seeds)
				serial := NewPad(maker).ServerPad(seeds, 42, tc.length)
				pp := NewParallelPad(maker, tc.workers)
				got := make([]byte, tc.length)
				pp.ServerPadInto(got, seeds, 42)
				if !bytes.Equal(got, serial) {
					t.Fatalf("seeds=%d len=%d workers=%d: parallel pad diverges from serial",
						tc.seeds, tc.length, tc.workers)
				}
				// Lane reuse across rounds must not leak state.
				serial2 := NewPad(maker).ServerPad(seeds, 43, tc.length)
				got2 := make([]byte, tc.length)
				pp.ServerPadInto(got2, seeds, 43)
				if !bytes.Equal(got2, serial2) {
					t.Fatalf("seeds=%d len=%d workers=%d: second round diverges (lane reuse)",
						tc.seeds, tc.length, tc.workers)
				}
			}
		})
	}
}

func TestParallelPadProperty(t *testing.T) {
	// Fuzz-ish parity: random seed counts, rounds, lengths, and worker
	// bounds always reproduce the serial reference bit for bit.
	f := func(tag byte, nSeeds, length uint8, workers uint8, round uint64) bool {
		n := int(nSeeds) % 24
		l := 1 + int(length)%513
		w := 1 + int(workers)%9
		seeds := paritySeeds(tag, n)
		serial := NewPad(crypto.NewAESPRNG).ServerPad(seeds, round, l)
		got := make([]byte, l)
		NewParallelPad(crypto.NewAESPRNG, w).ServerPadInto(got, seeds, round)
		return bytes.Equal(got, serial)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClientCiphertextIntoMatchesReference(t *testing.T) {
	seeds := paritySeeds(9, 5)
	msg := make([]byte, 300)
	for i := range msg {
		msg[i] = byte(i)
	}
	pad := NewPad(crypto.NewAESPRNG)
	want := pad.ClientCiphertext(seeds, 7, msg)

	dst := make([]byte, len(msg))
	pad.ClientCiphertextInto(dst, seeds, 7, msg)
	if !bytes.Equal(dst, want) {
		t.Fatal("ClientCiphertextInto diverges from ClientCiphertext")
	}

	// The prefetched-streams variant must agree too.
	ps := pad.Prepare(seeds, 7)
	if ps.Round() != 7 {
		t.Fatalf("prepared round = %d", ps.Round())
	}
	dst2 := make([]byte, len(msg))
	ps.CiphertextInto(dst2, msg)
	if !bytes.Equal(dst2, want) {
		t.Fatal("PadStreams.CiphertextInto diverges from ClientCiphertext")
	}
}

func TestServerPadIntoXORSemantics(t *testing.T) {
	// ServerPadInto must fold into existing dst contents (XOR
	// accumulate), the invariant the streaming combine relies on.
	seeds := paritySeeds(3, 4)
	base := make([]byte, 128)
	for i := range base {
		base[i] = byte(i * 31)
	}
	pad := NewPad(crypto.NewAESPRNG)
	want := pad.ServerPad(seeds, 5, len(base))
	crypto.XORBytes(want, base)

	got := append([]byte(nil), base...)
	pad.ServerPadInto(got, seeds, 5)
	if !bytes.Equal(got, want) {
		t.Fatal("ServerPadInto is not XOR-accumulating")
	}
}

func TestStreamBitMatchesSeekAndSequential(t *testing.T) {
	// StreamBit's seekable fast path (AES) and sequential fallback
	// (xoshiro) must both agree with the expanded stream.
	for name, maker := range map[string]crypto.PRNGMaker{"aes": crypto.NewAESPRNG, "fast": crypto.NewFastPRNG} {
		t.Run(name, func(t *testing.T) {
			pad := NewPad(maker)
			seed := crypto.Hash("pair", []byte("seekbit"))
			const length = 600
			buf := make([]byte, length)
			pad.XORStream(buf, seed, 11, length)
			for _, bit := range []int{0, 1, 7, 8, 63, 100, 2048, 4000, length*8 - 1} {
				want := (buf[bit/8] >> (uint(bit) % 8)) & 1
				if got := pad.StreamBit(seed, 11, bit); got != want {
					t.Errorf("StreamBit(%d) = %d, want %d", bit, got, want)
				}
			}
		})
	}
}

func TestParallelPadConcurrentInstancesUnderChurn(t *testing.T) {
	// Race-detector coverage for the engines' concurrency pattern: a
	// foreground expander and a prefetching expander (separate
	// instances, as documented) running over the same seed set across
	// rounds, with the seed roster growing at epoch boundaries the way
	// certified roster updates grow it. Run with -race in CI.
	maker := crypto.NewAESPRNG
	seeds := paritySeeds(1, 8)
	serial := NewPad(maker)

	const rounds = 12
	var wg sync.WaitGroup
	results := make([][]byte, rounds)
	roster := make([][][]byte, rounds) // seed snapshot actually used per round

	// Prefetcher: expands round r over a seed snapshot, concurrently
	// with the foreground expander — the engines' pattern (each side
	// owns its ParallelPad instance and an immutable seed snapshot).
	prefetcher := NewParallelPad(maker, 4)
	foreground := NewParallelPad(maker, 4)
	type prefetchResult struct {
		buf   []byte
		seeds [][]byte
	}
	requests := make(chan [][]byte, 1)
	prefetched := make(chan prefetchResult, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := uint64(0)
		for snap := range requests {
			buf := make([]byte, 256)
			prefetcher.ServerPadInto(buf, snap, r)
			prefetched <- prefetchResult{buf: buf, seeds: snap}
			r++
		}
	}()
	requests <- seeds[:len(seeds):len(seeds)]
	for r := uint64(0); r < rounds; r++ {
		res := <-prefetched
		if r%4 == 3 {
			// Epoch boundary: roster grows; the prefetched buffer was
			// computed over the old seed set and must be invalidated,
			// exactly like the engine's roster-version check does.
			seeds = append(seeds, paritySeeds(byte(100+r), 2)...)
			buf := make([]byte, 256)
			foreground.ServerPadInto(buf, seeds, r)
			results[r], roster[r] = buf, seeds
		} else {
			results[r], roster[r] = res.buf, res.seeds
		}
		if r+1 < rounds {
			requests <- seeds[:len(seeds):len(seeds)]
		}
	}
	close(requests)
	wg.Wait()
	for r := uint64(0); r < rounds; r++ {
		want := serial.ServerPad(roster[r], r, 256)
		if !bytes.Equal(results[r], want) {
			t.Fatalf("round %d pad diverges under concurrent prefetch", r)
		}
	}
}
