package dcnet

import (
	"bytes"
	"testing"
	"testing/quick"

	"dissent/internal/crypto"
)

func testConfig(slots int) Config {
	return Config{NumSlots: slots, DefaultOpenLen: 64, MaxSlotLen: 4096, IdleCloseRounds: 3}
}

// buildPairSeeds returns nClients x nServers pairwise seeds, as both
// sides would derive them from DH.
func buildPairSeeds(n, m int) [][][]byte {
	seeds := make([][][]byte, n)
	for i := range seeds {
		seeds[i] = make([][]byte, m)
		for j := range seeds[i] {
			seeds[i][j] = crypto.Hash("test-pair", crypto.HashUint64(uint64(i)), crypto.HashUint64(uint64(j)))
		}
	}
	return seeds
}

// runRound simulates one full DC-net combine: every client ciphertext
// XORed with every server pad must reveal the XOR of the messages.
func runRound(t *testing.T, maker crypto.PRNGMaker, seeds [][][]byte, round uint64, msgs [][]byte, include []bool) []byte {
	t.Helper()
	n := len(seeds)
	m := len(seeds[0])
	length := len(msgs[0])
	pad := NewPad(maker)

	out := make([]byte, length)
	for i := 0; i < n; i++ {
		if !include[i] {
			continue
		}
		ct := pad.ClientCiphertext(seeds[i], round, msgs[i])
		crypto.XORBytes(out, ct)
	}
	for j := 0; j < m; j++ {
		var clientSeeds [][]byte
		for i := 0; i < n; i++ {
			if include[i] {
				clientSeeds = append(clientSeeds, seeds[i][j])
			}
		}
		crypto.XORBytes(out, pad.ServerPad(clientSeeds, round, length))
	}
	return out
}

func TestDCNetCancellation(t *testing.T) {
	for name, maker := range map[string]crypto.PRNGMaker{"aes": crypto.NewAESPRNG, "fast": crypto.NewFastPRNG} {
		t.Run(name, func(t *testing.T) {
			const n, m, length = 5, 3, 200
			seeds := buildPairSeeds(n, m)
			msgs := make([][]byte, n)
			for i := range msgs {
				msgs[i] = make([]byte, length)
			}
			// Client 2 transmits in bytes [40:80).
			want := []byte("the quick brown fox jumps over the dog!")
			copy(msgs[2][40:], want)
			include := []bool{true, true, true, true, true}
			out := runRound(t, maker, seeds, 7, msgs, include)
			if !bytes.Equal(out[40:40+len(want)], want) {
				t.Error("message not revealed after combine")
			}
			if !allZero(out[:40]) || !allZero(out[40+len(want):]) {
				t.Error("pads did not cancel outside the message slot")
			}
		})
	}
}

func TestDCNetToleratesOfflineClients(t *testing.T) {
	// The crux of §3.6: when a client never submits, the servers just
	// exclude its seeds; remaining streams still cancel.
	const n, m, length = 6, 3, 128
	seeds := buildPairSeeds(n, m)
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = make([]byte, length)
	}
	copy(msgs[0][10:], "hello")
	include := []bool{true, false, true, false, true, true} // clients 1, 3 offline
	out := runRound(t, crypto.NewAESPRNG, seeds, 3, msgs, include)
	if string(out[10:15]) != "hello" {
		t.Error("message lost when other clients dropped")
	}
	if !allZero(out[15:]) {
		t.Error("residual noise from offline client handling")
	}
}

func TestDCNetMismatchedInclusionGarbles(t *testing.T) {
	// If servers include a client that never sent a ciphertext, the
	// round output is garbled — the detection signal for inventory bugs.
	const n, m, length = 3, 2, 64
	seeds := buildPairSeeds(n, m)
	pad := NewPad(crypto.NewAESPRNG)
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = make([]byte, length)
	}
	out := make([]byte, length)
	// Only clients 0 and 1 submit...
	for i := 0; i < 2; i++ {
		crypto.XORBytes(out, pad.ClientCiphertext(seeds[i], 0, msgs[i]))
	}
	// ...but servers include all three.
	for j := 0; j < m; j++ {
		crypto.XORBytes(out, pad.ServerPad([][]byte{seeds[0][j], seeds[1][j], seeds[2][j]}, 0, length))
	}
	if allZero(out) {
		t.Error("mismatched inclusion should garble the output")
	}
}

func TestRoundSeedsDiffer(t *testing.T) {
	s := crypto.Hash("pair", []byte("x"))
	if bytes.Equal(RoundSeed(s, 1), RoundSeed(s, 2)) {
		t.Error("round seeds repeat across rounds")
	}
}

func TestStreamBitMatchesStream(t *testing.T) {
	pad := NewPad(crypto.NewAESPRNG)
	seed := crypto.Hash("pair", []byte("bit"))
	const length = 64
	buf := make([]byte, length)
	pad.XORStream(buf, seed, 5, length)
	for _, bit := range []int{0, 1, 7, 8, 63, 100, length*8 - 1} {
		want := (buf[bit/8] >> (uint(bit) % 8)) & 1
		if got := pad.StreamBit(seed, 5, bit); got != want {
			t.Errorf("StreamBit(%d) = %d, want %d", bit, got, want)
		}
	}
}

func TestBitHelper(t *testing.T) {
	buf := []byte{0b0000_0101, 0b1000_0000}
	cases := []struct {
		idx  int
		want byte
	}{{0, 1}, {1, 0}, {2, 1}, {3, 0}, {15, 1}, {8, 0}}
	for _, c := range cases {
		if got := Bit(buf, c.idx); got != c.want {
			t.Errorf("Bit(%d) = %d, want %d", c.idx, got, c.want)
		}
	}
}

func TestSlotEncodeDecodeRoundTrip(t *testing.T) {
	buf := make([]byte, 128)
	p := SlotPayload{NextLen: 256, ShuffleReq: 0x3C, Data: []byte("payload data")}
	if err := EncodeSlot(buf, p, nil); err != nil {
		t.Fatal(err)
	}
	got, idle, err := DecodeSlot(buf)
	if err != nil || idle {
		t.Fatalf("DecodeSlot: err=%v idle=%v", err, idle)
	}
	if got.NextLen != p.NextLen || got.ShuffleReq != p.ShuffleReq || !bytes.Equal(got.Data, p.Data) {
		t.Errorf("round-trip mismatch: %+v vs %+v", got, p)
	}
}

func TestSlotIdleDetection(t *testing.T) {
	buf := make([]byte, MinSlotLen)
	_, idle, err := DecodeSlot(buf)
	if err != nil || !idle {
		t.Errorf("all-zero slot: idle=%v err=%v, want idle=true", idle, err)
	}
}

func TestSlotEncodeErrors(t *testing.T) {
	if err := EncodeSlot(make([]byte, MinSlotLen-1), SlotPayload{}, nil); err == nil {
		t.Error("short slot accepted")
	}
	buf := make([]byte, MinSlotLen+4)
	if err := EncodeSlot(buf, SlotPayload{Data: make([]byte, 5)}, nil); err == nil {
		t.Error("oversized data accepted")
	}
	if err := EncodeSlot(buf, SlotPayload{NextLen: -1}, nil); err == nil {
		t.Error("negative NextLen accepted")
	}
}

func TestSlotCapacity(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {MinSlotLen - 1, 0}, {MinSlotLen, 0}, {MinSlotLen + 10, 10},
	}
	for _, c := range cases {
		if got := SlotCapacity(c.n); got != c.want {
			t.Errorf("SlotCapacity(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if got := SlotLenFor(100); got != MinSlotLen+100 {
		t.Errorf("SlotLenFor(100) = %d", got)
	}
}

func TestSlotPayloadProperty(t *testing.T) {
	f := func(data []byte, nextLen uint16, req byte) bool {
		buf := make([]byte, SlotLenFor(len(data))+3)
		p := SlotPayload{NextLen: int(nextLen), ShuffleReq: req, Data: data}
		if err := EncodeSlot(buf, p, nil); err != nil {
			return false
		}
		got, idle, err := DecodeSlot(buf)
		if err != nil || idle {
			return false
		}
		return got.NextLen == int(nextLen) && got.ShuffleReq == req && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSlotMaskUnpredictable(t *testing.T) {
	// Two encodings of the same payload must differ (fresh seeds) —
	// the property that guarantees witness bits under disruption.
	p := SlotPayload{Data: []byte("same payload")}
	a := make([]byte, 64)
	b := make([]byte, 64)
	EncodeSlot(a, p, nil)
	EncodeSlot(b, p, nil)
	if bytes.Equal(a, b) {
		t.Error("identical encodings for identical payloads")
	}
}

func TestDCNetCancellationProperty(t *testing.T) {
	// Property: for random pair seeds, message placements, and online
	// subsets, the combine always reveals exactly the XOR of included
	// clients' messages.
	f := func(seedByte byte, lengthSeed uint8, onlineMask uint16) bool {
		const n, m = 8, 3
		length := 32 + int(lengthSeed)%96
		seeds := make([][][]byte, n)
		for i := range seeds {
			seeds[i] = make([][]byte, m)
			for j := range seeds[i] {
				seeds[i][j] = crypto.Hash("prop", []byte{seedByte, byte(i), byte(j)})
			}
		}
		pad := NewPad(crypto.NewAESPRNG)
		msgs := make([][]byte, n)
		include := make([]bool, n)
		want := make([]byte, length)
		for i := range msgs {
			msgs[i] = make([]byte, length)
			include[i] = onlineMask&(1<<uint(i)) != 0
			if include[i] {
				stream := crypto.NewAESPRNG(crypto.Hash("msg", []byte{seedByte, byte(i)}))
				stream.Read(msgs[i])
				crypto.XORBytes(want, msgs[i])
			}
		}
		out := make([]byte, length)
		for i := 0; i < n; i++ {
			if !include[i] {
				continue
			}
			crypto.XORBytes(out, pad.ClientCiphertext(seeds[i], 9, msgs[i]))
		}
		for j := 0; j < m; j++ {
			var cs [][]byte
			for i := 0; i < n; i++ {
				if include[i] {
					cs = append(cs, seeds[i][j])
				}
			}
			crypto.XORBytes(out, pad.ServerPad(cs, 9, length))
		}
		return bytes.Equal(out, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestScheduleLayoutContiguous(t *testing.T) {
	// Property: slot ranges tile the vector exactly once after the
	// request-bit region, in slot order, for random open/close states.
	s := mustSchedule(t, testConfig(6))
	buf := make([]byte, s.Len())
	for i := 0; i < 6; i += 2 {
		s.SetReqBit(buf, i, true)
	}
	if _, err := s.Advance(buf); err != nil {
		t.Fatal(err)
	}
	_, reqLen := s.ReqBitRange()
	off := reqLen
	for i := 0; i < 6; i++ {
		gotOff, gotLen := s.SlotRange(i)
		if gotOff != off {
			t.Fatalf("slot %d offset %d, want %d", i, gotOff, off)
		}
		off += gotLen
	}
	if off != s.Len() {
		t.Fatalf("slots cover %d bytes, vector is %d", off, s.Len())
	}
}
