package dcnet

import (
	"dissent/internal/crypto"
)

// Pad derives the per-round pseudo-random strings a node shares with
// its peers and combines them into DC-net ciphertexts. A client's Pad
// holds one seed per server (M seeds); a server's Pad holds one seed
// per client (N seeds) but normally expands only the subset that
// submitted in a given round (§3.4, §3.6).
type Pad struct {
	maker crypto.PRNGMaker
}

// NewPad returns a Pad using maker for stream expansion. Production
// code passes crypto.NewAESPRNG; the large-scale benchmark harness
// passes crypto.NewFastPRNG and accounts AES cost analytically.
func NewPad(maker crypto.PRNGMaker) *Pad {
	if maker == nil {
		maker = crypto.NewAESPRNG
	}
	return &Pad{maker: maker}
}

// RoundSeed derives the (pair, round) stream seed from a pairwise
// secret seed. Both ends of the pair derive the same value.
func RoundSeed(pairSeed []byte, round uint64) []byte {
	return crypto.Hash("dissent/round-stream", pairSeed, crypto.HashUint64(round))
}

// XORStream XORs the (pairSeed, round) stream of the given length into
// dst (which must be at least length bytes).
func (p *Pad) XORStream(dst []byte, pairSeed []byte, round uint64, length int) {
	s := p.maker(RoundSeed(pairSeed, round))
	s.XORKeyStream(dst[:length], dst[:length])
}

// ClientCiphertext builds client ciphertext c_i = m ⊕ ⊕_j PRNG(K_ij)
// for a round: the message vector XORed with one stream per server
// (Algorithm 1 step 2). msg must already be laid out as a full
// cleartext-length vector (zeros outside the client's own slots); it is
// not modified.
func (p *Pad) ClientCiphertext(serverSeeds [][]byte, round uint64, msg []byte) []byte {
	ct := append([]byte(nil), msg...)
	for _, seed := range serverSeeds {
		p.XORStream(ct, seed, round, len(ct))
	}
	return ct
}

// ServerPad computes ⊕_i PRNG(K_ij) over the given client seeds — the
// server's contribution for exactly the clients included in the round
// (Algorithm 2 step 3). The result has the given length.
func (p *Pad) ServerPad(clientSeeds [][]byte, round uint64, length int) []byte {
	pad := make([]byte, length)
	for _, seed := range clientSeeds {
		p.XORStream(pad, seed, round, length)
	}
	return pad
}

// StreamBit recomputes a single bit of the (pairSeed, round) stream:
// the accusation trace publishes exactly these bits so the servers can
// find who XORed an unmatched 1 into the witness position (§3.9).
func (p *Pad) StreamBit(pairSeed []byte, round uint64, bitIndex int) byte {
	byteIndex := bitIndex / 8
	buf := make([]byte, byteIndex+1)
	s := p.maker(RoundSeed(pairSeed, round))
	s.XORKeyStream(buf, buf)
	return (buf[byteIndex] >> (uint(bitIndex) % 8)) & 1
}

// Bit extracts bit bitIndex from a byte vector (LSB-first within each
// byte, matching StreamBit).
func Bit(buf []byte, bitIndex int) byte {
	return (buf[bitIndex/8] >> (uint(bitIndex) % 8)) & 1
}
