package dcnet

import (
	"dissent/internal/crypto"
)

// Pad derives the per-round pseudo-random strings a node shares with
// its peers and combines them into DC-net ciphertexts. A client's Pad
// holds one seed per server (M seeds); a server's Pad holds one seed
// per client (N seeds) but normally expands only the subset that
// submitted in a given round (§3.4, §3.6).
//
// Buffer ownership: the *Into variants XOR into caller-owned buffers
// and never retain them, so engines can recycle round vectors through
// a sync.Pool. The allocating variants remain as the reference
// implementations the differential tests compare against.
type Pad struct {
	maker crypto.PRNGMaker
}

// NewPad returns a Pad using maker for stream expansion. Production
// code passes crypto.NewAESPRNG; the large-scale benchmark harness
// passes crypto.NewFastPRNG and accounts AES cost analytically.
func NewPad(maker crypto.PRNGMaker) *Pad {
	if maker == nil {
		maker = crypto.NewAESPRNG
	}
	return &Pad{maker: maker}
}

// RoundSeed derives the (pair, round) stream seed from a pairwise
// secret seed. Both ends of the pair derive the same value.
func RoundSeed(pairSeed []byte, round uint64) []byte {
	return crypto.Hash("dissent/round-stream", pairSeed, crypto.HashUint64(round))
}

// XORStream XORs the (pairSeed, round) stream of the given length into
// dst (which must be at least length bytes).
func (p *Pad) XORStream(dst []byte, pairSeed []byte, round uint64, length int) {
	s := p.maker(RoundSeed(pairSeed, round))
	s.XORKeyStream(dst[:length], dst[:length])
}

// ClientCiphertext builds client ciphertext c_i = m ⊕ ⊕_j PRNG(K_ij)
// for a round: the message vector XORed with one stream per server
// (Algorithm 1 step 2). msg must already be laid out as a full
// cleartext-length vector (zeros outside the client's own slots); it is
// not modified.
func (p *Pad) ClientCiphertext(serverSeeds [][]byte, round uint64, msg []byte) []byte {
	ct := make([]byte, len(msg))
	p.ClientCiphertextInto(ct, serverSeeds, round, msg)
	return ct
}

// ClientCiphertextInto computes the client ciphertext into dst, which
// must be len(msg) bytes and may not alias msg. No allocation beyond
// the per-seed stream setup; pair with Prepare/PadStreams to move even
// that off the submit path.
func (p *Pad) ClientCiphertextInto(dst []byte, serverSeeds [][]byte, round uint64, msg []byte) {
	copy(dst, msg)
	for _, seed := range serverSeeds {
		p.XORStream(dst, seed, round, len(msg))
	}
}

// ServerPad computes ⊕_i PRNG(K_ij) over the given client seeds — the
// server's contribution for exactly the clients included in the round
// (Algorithm 2 step 3). The result has the given length.
func (p *Pad) ServerPad(clientSeeds [][]byte, round uint64, length int) []byte {
	pad := make([]byte, length)
	p.ServerPadInto(pad, clientSeeds, round)
	return pad
}

// ServerPadInto XOR-accumulates one stream per client seed into dst
// (XOR semantics: dst need not start zeroed; the streams fold into
// whatever it already holds). dst is caller-owned and may come from a
// pool. For multicore expansion see ParallelPad.
func (p *Pad) ServerPadInto(dst []byte, clientSeeds [][]byte, round uint64) {
	for _, seed := range clientSeeds {
		p.XORStream(dst, seed, round, len(dst))
	}
}

// PadStreams holds pre-built (pair, round) streams: the AES key
// schedules and CTR state for one upcoming round, constructed during
// the idle window so the submit path itself runs allocation-free.
// Streams are stateful — XOR/CiphertextInto consumes them — so a
// PadStreams is good for exactly one vector.
type PadStreams struct {
	round   uint64
	streams []crypto.PRNG
}

// Prepare builds the (seed, round) streams for a future round. Seeds
// are round-independent, so this needs nothing beyond the round number
// — the prefetch trick the engines use between rounds.
func (p *Pad) Prepare(seeds [][]byte, round uint64) *PadStreams {
	ps := &PadStreams{round: round, streams: make([]crypto.PRNG, len(seeds))}
	for i, seed := range seeds {
		ps.streams[i] = p.maker(RoundSeed(seed, round))
	}
	return ps
}

// Round returns the round the streams were prepared for.
func (ps *PadStreams) Round() uint64 { return ps.round }

// XORInto XORs every prepared stream into dst, consuming len(dst)
// bytes of each. Allocation-free.
func (ps *PadStreams) XORInto(dst []byte) {
	for _, s := range ps.streams {
		s.XORKeyStream(dst, dst)
	}
}

// CiphertextInto computes the client ciphertext for msg into dst using
// the prepared streams: copy + in-place XOR, 0 allocs/op. dst must be
// len(msg) bytes and may not alias msg.
func (ps *PadStreams) CiphertextInto(dst, msg []byte) {
	copy(dst, msg[:len(dst)])
	ps.XORInto(dst)
}

// StreamBit recomputes a single bit of the (pairSeed, round) stream:
// the accusation trace publishes exactly these bits so the servers can
// find who XORed an unmatched 1 into the witness position (§3.9).
func (p *Pad) StreamBit(pairSeed []byte, round uint64, bitIndex int) byte {
	s := p.maker(RoundSeed(pairSeed, round))
	byteIndex := bitIndex / 8
	var b [1]byte
	if sk, ok := s.(crypto.SeekableStream); ok {
		sk.XORKeyStreamAt(b[:], uint64(byteIndex))
	} else {
		// Sequential fallback: discard the prefix through a bounded
		// scratch chunk instead of materializing byteIndex bytes.
		var chunk [256]byte
		for skip := byteIndex; skip > 0; {
			n := skip
			if n > len(chunk) {
				n = len(chunk)
			}
			s.Read(chunk[:n])
			skip -= n
		}
		s.Read(b[:])
	}
	return (b[0] >> (uint(bitIndex) % 8)) & 1
}

// Bit extracts bit bitIndex from a byte vector (LSB-first within each
// byte, matching StreamBit).
func Bit(buf []byte, bitIndex int) byte {
	return (buf[bitIndex/8] >> (uint(bitIndex) % 8)) & 1
}
