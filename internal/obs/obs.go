// Package obs is a zero-dependency observability toolkit: hand-rolled
// Prometheus-style instruments (counter, gauge, histogram with fixed
// buckets), a text-format exposition writer, a registry of collect
// functions, and a bounded ring of per-round trace spans. It exists so
// the module can serve scrape-compatible /metrics without taking a
// client_golang dependency; everything here is stdlib-only.
//
// The design is collect-at-scrape: instruments hold live state, and a
// Registry's collect functions walk that state when a scrape arrives,
// rendering one consistent exposition. Counter and gauge families that
// already exist as SDK snapshot structs are emitted straight from the
// snapshot, so the Prometheus and expvar endpoints can never disagree.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair on a metric series.
type Label struct {
	Name, Value string
}

// Labels is an ordered label set. Order is preserved in the exposition
// (Prometheus does not require sorting, only consistency).
type Labels []Label

// L builds a label set from name/value pairs: L("session", id, "role",
// "server"). It panics on an odd count — a static-usage bug.
func L(pairs ...string) Labels {
	if len(pairs)%2 != 0 {
		panic("obs: L requires name/value pairs")
	}
	ls := make(Labels, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		ls = append(ls, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return ls
}

// With returns a copy of ls with extra pairs appended.
func (ls Labels) With(pairs ...string) Labels {
	out := make(Labels, len(ls), len(ls)+len(pairs)/2)
	copy(out, ls)
	return append(out, L(pairs...)...)
}

// Counter is a monotonically increasing count. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets are the fixed histogram bounds (seconds) used for the
// round-phase latency families: 500µs to 30s, roughly logarithmic.
// Pad and combine land in the sub-millisecond buckets on the PR 5 data
// plane; submission windows span the milliseconds-to-seconds range.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram counts observations into fixed, ascending buckets. A final
// +Inf bucket is implicit. All methods are safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    Gauge           // observed-value sum (CAS float add)
}

// NewHistogram builds a histogram over the given upper bounds, which
// must be finite and strictly ascending. An observation v lands in the
// first bucket with v <= bound, Prometheus `le` semantics.
func NewHistogram(bounds ...float64) *Histogram {
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("obs: histogram bounds must be finite (+Inf is implicit)")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le semantics
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	// Bounds are the finite upper bounds; Counts has one extra entry for
	// the +Inf overflow bucket. Counts are per-bucket, not cumulative.
	Bounds []float64
	Counts []uint64
	// Sum is the sum of observed values; Count the total observations
	// (always the sum of Counts, so the exposition stays internally
	// consistent even when a snapshot races an Observe).
	Sum   float64
	Count uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Value()
	return s
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// escapeLabel escapes a label value: backslash, double-quote, newline.
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// formatFloat renders a sample value or bucket bound the way Prometheus
// expects (shortest round-trip representation, +Inf spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Writer renders Prometheus text exposition format (version 0.0.4).
// Declare each family once with Family, then emit its series with
// Sample or Hist; the first write error sticks and is returned by Err.
type Writer struct {
	w      io.Writer
	err    error
	family string
}

// NewWriter wraps w in an exposition writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (e *Writer) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Family begins a metric family: HELP and TYPE headers. typ is
// "counter", "gauge", or "histogram".
func (e *Writer) Family(name, typ, help string) {
	e.family = name
	e.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// labelString renders {a="b",...}, or "" for an empty set.
func labelString(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Sample emits one series of the current family.
func (e *Writer) Sample(labels Labels, v float64) {
	e.printf("%s%s %s\n", e.family, labelString(labels), formatFloat(v))
}

// Hist emits one histogram series of the current family: cumulative
// _bucket lines per bound plus +Inf, then _sum and _count.
func (e *Writer) Hist(labels Labels, s HistSnapshot) {
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		e.printf("%s_bucket%s %d\n", e.family, labelString(labels.With("le", formatFloat(b))), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	e.printf("%s_bucket%s %d\n", e.family, labelString(labels.With("le", "+Inf")), cum)
	e.printf("%s_sum%s %s\n", e.family, labelString(labels), formatFloat(s.Sum))
	e.printf("%s_count%s %d\n", e.family, labelString(labels), s.Count)
}

// Err returns the first write error, if any.
func (e *Writer) Err() error { return e.err }

// Registry holds collect functions that render metric families at
// scrape time. Collectors run in registration order, so families stay
// grouped and stably ordered across scrapes.
type Registry struct {
	mu         sync.Mutex
	collectors []func(*Writer)
	scrapes    Counter
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Collect registers fn to be called on every scrape. fn must declare
// any family it emits (Writer.Family) before emitting its series, and
// must not emit a family another collector owns.
func (r *Registry) Collect(fn func(*Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// WriteText renders every registered family as text exposition.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]func(*Writer){}, r.collectors...)
	r.mu.Unlock()
	r.scrapes.Inc()
	e := NewWriter(w)
	for _, fn := range collectors {
		fn(e)
	}
	e.Family("dissent_metrics_scrapes_total", "counter", "Scrapes served by this registry.")
	e.Sample(nil, float64(r.scrapes.Value()))
	return e.Err()
}

// ServeHTTP serves the exposition with the Prometheus text content
// type, making the registry mountable as an http.Handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := r.WriteText(w); err != nil {
		// Headers are gone; nothing useful left to do but note it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
