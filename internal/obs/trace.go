package obs

import (
	"sync"
	"time"
)

// RoundTrace is one DC-net round's span record: where the round's
// latency went, phase by phase. Servers fill every phase; clients see
// only the round end-to-end (submit to certified output). Durations
// are zero for phases a role does not run. The JSON field names are
// the /debug/rounds wire format and the `dissent trace` input.
type RoundTrace struct {
	// Session is the owning session's ID (hex), stamped by the SDK; the
	// engine leaves it empty.
	Session string `json:"session,omitempty"`
	// Round is the DC-net round number; Attempts counts α-policy window
	// reopenings (0 = the window closed once).
	Round    uint64 `json:"round"`
	Attempts int    `json:"attempts,omitempty"`
	// Start is when the round opened (the previous certification).
	Start time.Time `json:"start"`
	// Window is submission-window time: open to final close. Pad is
	// critical-path pad expansion at window close; Combine is ciphertext
	// fold plus share assembly; Certify is certificate collection, from
	// this server's signature to the last peer's.
	Window  time.Duration `json:"window_ns"`
	Pad     time.Duration `json:"pad_ns"`
	Combine time.Duration `json:"combine_ns"`
	Certify time.Duration `json:"certify_ns"`
	// Blame is the accusation-shuffle duration when one followed this
	// round, annotated after the verdict; BlameVerdict carries the
	// outcome ("client expelled", "server exposed", "inconclusive") and
	// BlameAccused the culprit's node ID (hex; empty when inconclusive).
	Blame        time.Duration `json:"blame_ns,omitempty"`
	BlameVerdict string        `json:"blame_verdict,omitempty"`
	BlameAccused string        `json:"blame_accused,omitempty"`
	// Total is round open to certified output.
	Total time.Duration `json:"total_ns"`
	// Participation is the certified include-set size; Stragglers counts
	// expected members the window closed without.
	Participation int `json:"participation"`
	Stragglers    int `json:"stragglers,omitempty"`
	// PrefetchHit reports whether the server pad came from the
	// window-long background prefetch (vs critical-path expansion).
	PrefetchHit bool `json:"prefetch_hit,omitempty"`
	// Failed marks a hard-timeout round (participation below α·prev).
	Failed bool `json:"failed,omitempty"`
	// Depth is the pipeline occupancy when this round's window opened
	// (this round included): 1 for serial operation, up to
	// Options.PipelineDepth when rounds overlap.
	Depth int `json:"depth,omitempty"`
}

// TraceRing is a bounded, concurrency-safe ring of the most recent
// round traces. Pushes past capacity evict the oldest entry.
type TraceRing struct {
	mu   sync.Mutex
	buf  []RoundTrace
	next int // write cursor
	full bool
}

// NewTraceRing builds a ring holding up to capacity traces (min 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]RoundTrace, capacity)}
}

// Push appends a trace, evicting the oldest when full.
func (r *TraceRing) Push(t RoundTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// Annotate applies fn to the newest trace for the given round and
// reports whether one was found. Blame verdicts land here: the
// accusation shuffle concludes after its round's trace was pushed.
func (r *TraceRing) Annotate(round uint64, fn func(*RoundTrace)) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.len()
	for i := n - 1; i >= 0; i-- {
		t := &r.buf[r.index(i)]
		if t.Round == round {
			fn(t)
			return true
		}
	}
	return false
}

// len reports the number of stored traces; callers hold r.mu.
func (r *TraceRing) len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// index maps logical position i (0 = oldest) to a buffer index;
// callers hold r.mu.
func (r *TraceRing) index(i int) int {
	if r.full {
		return (r.next + i) % len(r.buf)
	}
	return i
}

// Snapshot returns up to n of the most recent traces, oldest first
// (all of them when n <= 0).
func (r *TraceRing) Snapshot(n int) []RoundTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := r.len()
	if n <= 0 || n > have {
		n = have
	}
	out := make([]RoundTrace, 0, n)
	for i := have - n; i < have; i++ {
		out = append(out, r.buf[r.index(i)])
	}
	return out
}
