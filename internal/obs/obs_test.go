package obs

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

func TestHistogramBucketMath(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	// le semantics: v <= bound lands in that bucket.
	for _, v := range []float64{0.05, 0.1} { // both <= 0.1
		h.Observe(v)
	}
	h.Observe(0.5) // (0.1, 1]
	h.Observe(1)   // boundary: still (0.1, 1]
	h.Observe(7)   // (1, 10]
	h.Observe(11)  // +Inf overflow
	s := h.Snapshot()
	wantCounts := []uint64{2, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if want := 0.05 + 0.1 + 0.5 + 1 + 7 + 11; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
	h.ObserveDuration(50 * time.Millisecond) // 0.05s -> first bucket
	if got := h.Snapshot().Counts[0]; got != 3 {
		t.Errorf("first bucket after ObserveDuration = %d, want 3", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets...)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{{1, 1}, {2, 1}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestEscaping(t *testing.T) {
	cases := []struct{ in, help, label string }{
		{"plain", "plain", "plain"},
		{`back\slash`, `back\\slash`, `back\\slash`},
		{"new\nline", `new\nline`, `new\nline`},
		{`quo"te`, `quo"te`, `quo\"te`},
	}
	for _, c := range cases {
		if got := escapeHelp(c.in); got != c.help {
			t.Errorf("escapeHelp(%q) = %q, want %q", c.in, got, c.help)
		}
		if got := escapeLabel(c.in); got != c.label {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.label)
		}
	}
}

func TestWriterExposition(t *testing.T) {
	var b strings.Builder
	e := NewWriter(&b)
	e.Family("test_total", "counter", "A test\ncounter.")
	e.Sample(L("session", `s"1`), 3)
	e.Sample(nil, 4)
	h := NewHistogram(0.5, 1)
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(5)
	e.Family("test_seconds", "histogram", "Latencies.")
	e.Hist(L("phase", "window"), h.Snapshot())
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# HELP test_total A test\\ncounter.\n",
		"# TYPE test_total counter\n",
		"test_total{session=\"s\\\"1\"} 3\n",
		"test_total 4\n",
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{phase="window",le="0.5"} 1` + "\n",
		`test_seconds_bucket{phase="window",le="1"} 2` + "\n",
		`test_seconds_bucket{phase="window",le="+Inf"} 3` + "\n",
		`test_seconds_sum{phase="window"} 5.9` + "\n",
		`test_seconds_count{phase="window"} 3` + "\n",
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q in:\n%s", w, out)
		}
	}
	// Every non-comment line must match the sample grammar.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	r.Collect(func(e *Writer) {
		e.Family("a_total", "counter", "A.")
		e.Sample(nil, float64(c.Value()))
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{"a_total 7\n", "dissent_metrics_scrapes_total 1\n"} {
		if !strings.Contains(out, w) {
			t.Errorf("registry output missing %q in:\n%s", w, out)
		}
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := uint64(1); i <= 5; i++ {
		r.Push(RoundTrace{Round: i})
	}
	got := r.Snapshot(0)
	if len(got) != 3 || got[0].Round != 3 || got[2].Round != 5 {
		t.Fatalf("snapshot = %+v, want rounds 3..5", got)
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].Round != 4 {
		t.Fatalf("snapshot(2) = %+v, want rounds 4..5", got)
	}
	if !r.Annotate(4, func(t *RoundTrace) { t.BlameVerdict = "x" }) {
		t.Fatal("Annotate(4) found nothing")
	}
	if got := r.Snapshot(0)[1]; got.BlameVerdict != "x" {
		t.Fatalf("annotation lost: %+v", got)
	}
	if r.Annotate(99, func(*RoundTrace) {}) {
		t.Fatal("Annotate(99) matched a missing round")
	}
}
