// Package adversary is a catalog of scripted byzantine behaviors for
// robustness testing. An Adversary compiles a schedule of Behaviors
// into a core.Interdict that an otherwise honest engine installs via
// core.Options.Interdict: the node keeps running the real protocol and
// the interdict tampers with exactly the surfaces a compromised member
// controls — its cleartext vector, its DC-net share, and its outgoing
// signed frames. Every behavior is deterministic given its Seed, so a
// simulated attack replays bit-for-bit.
//
// The catalog covers the disruption classes of Wolinsky et al. (OSDI
// 2012): slot jamming (§3.9's motivating attack), ciphertext
// equivocation, corrupted pad shares, bad certificate signatures,
// selective withholding, duplicate/replayed round messages, and
// malformed wire frames.
package adversary

import (
	"fmt"

	"dissent/internal/core"
	"dissent/internal/group"
)

// Kind names a scripted byzantine behavior.
type Kind string

// The behavior catalog. Client-side kinds act through the Vector or
// Outbound hooks of a client engine; server-side kinds act through the
// Share or Outbound hooks of a server engine. Installing a kind on a
// role whose hooks it never matches is simply inert.
const (
	// SlotJam flips bits inside another member's slot range in the
	// jammer's cleartext vector before padding and signing: the
	// submission stays perfectly authentic while the victim's slot
	// output garbles. Detected by the victim's self-check and pinned by
	// the accusation trace (client expelled).
	SlotJam Kind = "slot-jam"
	// CorruptShare flips a byte of a server's DC-net share before it is
	// committed, so commit and share stay consistent and the round's
	// cleartext garbles. The blame trace's bit check exposes the server.
	CorruptShare Kind = "corrupt-share"
	// Equivocate sends conflicting signed payloads for the same round
	// message: a server presents different shares to different peers; a
	// client double-submits distinct ciphertexts. Receivers hold both
	// signed statements — provable equivocation.
	Equivocate Kind = "equivocate"
	// BadCertSig corrupts the certificate signature carried inside
	// MsgCertify (the envelope is re-signed, so only the inner
	// certificate check fails).
	BadCertSig Kind = "bad-cert-sig"
	// Withhold drops outgoing round messages (optionally only to
	// Targets), modeling selective silence.
	Withhold Kind = "withhold"
	// Replay re-sends retained signed messages: each intercepted
	// envelope is duplicated Copies times and the previously retained
	// envelope of the same type is re-emitted.
	Replay Kind = "replay"
	// Malform replaces an outgoing message body with same-length
	// garbage and re-signs, so the frame authenticates but fails to
	// decode.
	Malform Kind = "malform"
)

// Kinds lists the full catalog.
func Kinds() []Kind {
	return []Kind{SlotJam, CorruptShare, Equivocate, BadCertSig, Withhold, Replay, Malform}
}

// Behavior schedules one Kind across a round range.
type Behavior struct {
	Kind Kind
	// FromRound..ToRound bounds the active rounds (inclusive).
	// ToRound 0 means "no upper bound".
	FromRound uint64
	ToRound   uint64
	// Every acts only on rounds with (round-FromRound) % Every == 0;
	// 0 or 1 means every round in range.
	Every uint64
	// Targets restricts Withhold (recipients to starve) and Equivocate
	// (recipients fed the conflicting variant). Empty means a seeded
	// half of the recipients for Equivocate and everyone for Withhold.
	Targets []group.NodeID
	// Copies is Replay's duplication factor per intercepted envelope
	// (default 3).
	Copies int
	// Seed decorrelates this behavior's deterministic choices.
	Seed uint64
}

func (b *Behavior) active(round uint64) bool {
	if round < b.FromRound {
		return false
	}
	if b.ToRound != 0 && round > b.ToRound {
		return false
	}
	if b.Every > 1 && (round-b.FromRound)%b.Every != 0 {
		return false
	}
	return true
}

// rnd derives this behavior's deterministic choice for a round and
// salt.
func (b *Behavior) rnd(round, salt uint64) uint64 {
	return mix(b.Seed ^ mix(round) ^ mix(salt))
}

// mix is the splitmix64 finalizer: cheap, deterministic, well mixed.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func idSalt(id group.NodeID) uint64 {
	var x uint64
	for _, b := range id {
		x = x<<8 | uint64(b)
	}
	return x
}

// Adversary is a compiled behavior schedule. One Adversary drives one
// node; give each byzantine node its own (with distinct Seeds) to
// avoid correlated choices.
type Adversary struct {
	behaviors []Behavior
	// replayHeld retains the last signed envelope per message type for
	// the Replay behavior.
	replayHeld map[core.MsgType]core.Envelope
}

// New compiles a behavior schedule. Unknown kinds are rejected here so
// a scenario config typo fails fast instead of silently doing nothing.
func New(behaviors ...Behavior) (*Adversary, error) {
	known := make(map[Kind]bool)
	for _, k := range Kinds() {
		known[k] = true
	}
	for i := range behaviors {
		if !known[behaviors[i].Kind] {
			return nil, fmt.Errorf("adversary: unknown behavior kind %q", behaviors[i].Kind)
		}
		if behaviors[i].Kind == Replay && behaviors[i].Copies <= 0 {
			behaviors[i].Copies = 3
		}
	}
	return &Adversary{
		behaviors:  behaviors,
		replayHeld: make(map[core.MsgType]core.Envelope),
	}, nil
}

// MustNew is New for statically-known schedules (builtin scenarios).
func MustNew(behaviors ...Behavior) *Adversary {
	a, err := New(behaviors...)
	if err != nil {
		panic(err)
	}
	return a
}

// Interdict compiles the schedule into the engine hook. The returned
// Interdict is not safe for concurrent engines; build one Adversary
// per node.
func (a *Adversary) Interdict() *core.Interdict {
	return &core.Interdict{
		Vector:   a.vector,
		Share:    a.share,
		Outbound: a.outbound,
	}
}

// vector implements SlotJam.
func (a *Adversary) vector(info core.VectorInfo, vec []byte) {
	for i := range a.behaviors {
		b := &a.behaviors[i]
		if b.Kind != SlotJam || !b.active(info.Round) {
			continue
		}
		a.jamSlot(b, info, vec)
	}
}

func (a *Adversary) jamSlot(b *Behavior, info core.VectorInfo, vec []byte) {
	if info.NumSlots < 2 {
		return
	}
	// Choose a victim slot deterministically among the open slots that
	// are not our own. (Slot ownership is pseudonymous — a real jammer
	// cannot aim at an identity either, only at a slot.)
	var open []int
	for s := 0; s < info.NumSlots; s++ {
		if s == info.OwnSlot {
			continue
		}
		if _, n := info.SlotRange(s); n > 0 {
			open = append(open, s)
		}
	}
	if len(open) == 0 {
		return
	}
	victim := open[b.rnd(info.Round, 0)%uint64(len(open))]
	off, n := info.SlotRange(victim)
	// Flip a bit somewhere past the slot header: enough to garble the
	// victim's cleartext, and a single provable position for the trace.
	pos := off + int(b.rnd(info.Round, 1)%uint64(n))
	vec[pos] ^= 1 << (b.rnd(info.Round, 2) % 8)
}

// share implements CorruptShare.
func (a *Adversary) share(round uint64, share []byte) {
	for i := range a.behaviors {
		b := &a.behaviors[i]
		if b.Kind != CorruptShare || !b.active(round) || len(share) == 0 {
			continue
		}
		pos := int(b.rnd(round, 3) % uint64(len(share)))
		share[pos] ^= 0xFF
	}
}

// roundMsg reports whether a message type carries per-round protocol
// state worth attacking (setup/join traffic is left alone so the
// adversary can actually enter and stay in the session).
func roundMsg(t core.MsgType) bool {
	switch t {
	case core.MsgClientSubmit, core.MsgInventory, core.MsgCommit,
		core.MsgShare, core.MsgCertify:
		return true
	}
	return false
}

// outbound implements Equivocate, BadCertSig, Withhold, Replay, and
// Malform. Behaviors compose left to right over the envelope list.
func (a *Adversary) outbound(env core.Envelope, resign func(*core.Message) *core.Message) []core.Envelope {
	out := []core.Envelope{env}
	for i := range a.behaviors {
		b := &a.behaviors[i]
		next := out[:0:0]
		for _, e := range out {
			if e.Msg == nil || !roundMsg(e.Msg.Type) || !b.active(e.Msg.Round) {
				next = append(next, e)
				continue
			}
			switch b.Kind {
			case Withhold:
				if len(b.Targets) == 0 || containsID(b.Targets, e.To) {
					continue // dropped
				}
				next = append(next, e)
			case Equivocate:
				next = append(next, a.equivocate(b, e, resign)...)
			case BadCertSig:
				if e.Msg.Type == core.MsgCertify {
					next = append(next, mutated(e, resign, func(body []byte) {
						body[len(body)-1] ^= 0xFF
					}))
				} else {
					next = append(next, e)
				}
			case Malform:
				next = append(next, mutated(e, resign, func(body []byte) {
					for j := range body {
						body[j] = byte(b.rnd(e.Msg.Round, uint64(j)))
					}
				}))
			case Replay:
				next = append(next, e)
				for c := 0; c < b.Copies; c++ {
					next = append(next, e)
				}
				if held, ok := a.replayHeld[e.Msg.Type]; ok && held.Msg != e.Msg {
					next = append(next, held)
				}
				a.replayHeld[e.Msg.Type] = e
			default:
				next = append(next, e)
			}
		}
		out = next
	}
	return out
}

// equivocate sends a conflicting variant: to a seeded half of the
// peers (or the configured Targets) the payload's last byte is
// flipped and the frame re-signed; a client (whose only recipient is
// its upstream) instead emits both variants, a provable distinct
// double-submission.
func (a *Adversary) equivocate(b *Behavior, e core.Envelope, resign func(*core.Message) *core.Message) []core.Envelope {
	alt := mutated(e, resign, func(body []byte) {
		body[len(body)-1] ^= 0xFF
	})
	if e.Msg.Type == core.MsgClientSubmit {
		return []core.Envelope{e, alt}
	}
	conflicting := false
	if len(b.Targets) > 0 {
		conflicting = containsID(b.Targets, e.To)
	} else {
		conflicting = b.rnd(e.Msg.Round, idSalt(e.To))%2 == 1
	}
	if conflicting {
		return []core.Envelope{alt}
	}
	return []core.Envelope{e}
}

// mutated deep-copies the envelope's message, applies f to the body
// copy, and re-signs. The original message is never touched (the
// engine retains it for retransmission).
func mutated(e core.Envelope, resign func(*core.Message) *core.Message, f func(body []byte)) core.Envelope {
	body := append([]byte(nil), e.Msg.Body...)
	if len(body) == 0 {
		return e
	}
	f(body)
	m := &core.Message{From: e.Msg.From, Type: e.Msg.Type, Round: e.Msg.Round, Body: body}
	return core.Envelope{To: e.To, Msg: resign(m)}
}

func containsID(ids []group.NodeID, id group.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
