package adversary

import (
	"bytes"
	"testing"

	"dissent/internal/core"
	"dissent/internal/group"
)

func id(b byte) group.NodeID {
	var n group.NodeID
	n[7] = b
	return n
}

// passthrough resign marks the message so tests can verify mutated
// frames went through re-signing.
func passthrough(m *core.Message) *core.Message {
	m.Sig = []byte{0xAA}
	return m
}

func env(t core.MsgType, round uint64, to byte, body ...byte) core.Envelope {
	return core.Envelope{To: id(to), Msg: &core.Message{Type: t, Round: round, Body: body}}
}

func TestNewRejectsUnknownKind(t *testing.T) {
	if _, err := New(Behavior{Kind: "tickle"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New(Behavior{Kind: SlotJam}); err != nil {
		t.Fatal(err)
	}
}

func TestBehaviorSchedule(t *testing.T) {
	b := Behavior{Kind: Withhold, FromRound: 10, ToRound: 20, Every: 5}
	for round, want := range map[uint64]bool{
		9: false, 10: true, 11: false, 15: true, 20: true, 21: false, 25: false,
	} {
		if got := b.active(round); got != want {
			t.Errorf("round %d: active=%v, want %v", round, got, want)
		}
	}
	open := Behavior{Kind: Withhold, FromRound: 3}
	if !open.active(1 << 40) {
		t.Error("ToRound 0 should mean unbounded")
	}
}

func TestSlotJamDeterministicAndTargetsOthers(t *testing.T) {
	mk := func() *Adversary { return MustNew(Behavior{Kind: SlotJam, Seed: 7}) }
	info := core.VectorInfo{
		Round:    5,
		OwnSlot:  1,
		NumSlots: 3,
		SlotRange: func(s int) (int, int) {
			return s * 10, 10
		},
	}
	vec1 := make([]byte, 30)
	vec2 := make([]byte, 30)
	mk().Interdict().Vector(info, vec1)
	mk().Interdict().Vector(info, vec2)
	if !bytes.Equal(vec1, vec2) {
		t.Fatal("jam is not deterministic for a fixed seed")
	}
	diff := 0
	for i, b := range vec1 {
		if b != 0 {
			diff++
			if i >= 10 && i < 20 {
				t.Fatalf("jam hit the jammer's own slot at byte %d", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("jam flipped %d bytes, want exactly 1", diff)
	}
	// A different seed eventually picks a different position.
	other := make([]byte, 30)
	MustNew(Behavior{Kind: SlotJam, Seed: 8}).Interdict().Vector(info, other)
	if bytes.Equal(vec1, other) {
		t.Log("seeds 7 and 8 collided on one round (possible, not fatal)")
	}
}

func TestCorruptShare(t *testing.T) {
	a := MustNew(Behavior{Kind: CorruptShare, FromRound: 2, ToRound: 2})
	share := make([]byte, 64)
	a.Interdict().Share(1, share)
	if !bytes.Equal(share, make([]byte, 64)) {
		t.Fatal("corrupted outside the round range")
	}
	a.Interdict().Share(2, share)
	if bytes.Equal(share, make([]byte, 64)) {
		t.Fatal("share not corrupted in range")
	}
}

func TestWithholdDropsAndTargets(t *testing.T) {
	all := MustNew(Behavior{Kind: Withhold})
	if got := all.Interdict().Outbound(env(core.MsgShare, 1, 9, 1, 2), passthrough); len(got) != 0 {
		t.Fatalf("untargeted withhold kept %d envelopes", len(got))
	}
	// Setup traffic is never touched.
	if got := all.Interdict().Outbound(env(core.MsgSchedule, 1, 9, 1), passthrough); len(got) != 1 {
		t.Fatal("withhold must leave setup traffic alone")
	}
	sel := MustNew(Behavior{Kind: Withhold, Targets: []group.NodeID{id(5)}})
	if got := sel.Interdict().Outbound(env(core.MsgShare, 1, 5, 1), passthrough); len(got) != 0 {
		t.Fatal("targeted peer not starved")
	}
	if got := sel.Interdict().Outbound(env(core.MsgShare, 1, 6, 1), passthrough); len(got) != 1 {
		t.Fatal("untargeted peer starved")
	}
}

func TestEquivocateClientDoubleSubmits(t *testing.T) {
	a := MustNew(Behavior{Kind: Equivocate})
	orig := env(core.MsgClientSubmit, 3, 1, 10, 20, 30)
	got := a.Interdict().Outbound(orig, passthrough)
	if len(got) != 2 {
		t.Fatalf("client equivocation produced %d envelopes, want 2", len(got))
	}
	if got[0].Msg != orig.Msg {
		t.Fatal("first envelope must be the original")
	}
	alt := got[1].Msg
	if bytes.Equal(alt.Body, orig.Msg.Body) {
		t.Fatal("variant is not distinct")
	}
	if len(alt.Body) != len(orig.Msg.Body) || alt.Sig == nil {
		t.Fatal("variant must be same-length and re-signed")
	}
	if orig.Msg.Body[2] != 30 {
		t.Fatal("original message mutated in place")
	}
}

func TestEquivocateServerSplitsPeers(t *testing.T) {
	a := MustNew(Behavior{Kind: Equivocate, Targets: []group.NodeID{id(2)}})
	fed := a.Interdict().Outbound(env(core.MsgShare, 3, 2, 1, 2, 3), passthrough)
	honest := a.Interdict().Outbound(env(core.MsgShare, 3, 4, 1, 2, 3), passthrough)
	if len(fed) != 1 || len(honest) != 1 {
		t.Fatal("server equivocation must keep one envelope per peer")
	}
	if bytes.Equal(fed[0].Msg.Body, honest[0].Msg.Body) {
		t.Fatal("both peers saw the same payload — no equivocation")
	}
}

func TestBadCertSigOnlyCertify(t *testing.T) {
	a := MustNew(Behavior{Kind: BadCertSig})
	cert := a.Interdict().Outbound(env(core.MsgCertify, 2, 1, 9, 9, 9), passthrough)
	if len(cert) != 1 || bytes.Equal(cert[0].Msg.Body, []byte{9, 9, 9}) {
		t.Fatal("certificate not corrupted")
	}
	if cert[0].Msg.Sig == nil {
		t.Fatal("corrupted certificate not re-signed")
	}
	share := a.Interdict().Outbound(env(core.MsgShare, 2, 1, 9), passthrough)
	if len(share) != 1 || !bytes.Equal(share[0].Msg.Body, []byte{9}) {
		t.Fatal("non-certify traffic touched")
	}
}

func TestReplayDuplicatesAndReemits(t *testing.T) {
	a := MustNew(Behavior{Kind: Replay, Copies: 4})
	first := env(core.MsgClientSubmit, 1, 1, 1)
	got := a.Interdict().Outbound(first, passthrough)
	if len(got) != 5 { // original + 4 copies; nothing retained yet
		t.Fatalf("first send produced %d envelopes, want 5", len(got))
	}
	second := env(core.MsgClientSubmit, 2, 1, 2)
	got = a.Interdict().Outbound(second, passthrough)
	if len(got) != 6 { // original + 4 copies + replayed round-1 frame
		t.Fatalf("second send produced %d envelopes, want 6", len(got))
	}
	if got[5].Msg != first.Msg {
		t.Fatal("retained frame is not the round-1 original")
	}
}

func TestMalformKeepsLengthAndResigns(t *testing.T) {
	a := MustNew(Behavior{Kind: Malform, Seed: 3})
	orig := env(core.MsgCommit, 2, 1, 7, 7, 7, 7)
	got := a.Interdict().Outbound(orig, passthrough)
	if len(got) != 1 {
		t.Fatalf("malform produced %d envelopes", len(got))
	}
	m := got[0].Msg
	if len(m.Body) != 4 || bytes.Equal(m.Body, orig.Msg.Body) {
		t.Fatal("body must be distinct garbage of the same length")
	}
	if m.Sig == nil {
		t.Fatal("malformed frame must be re-signed")
	}
	if !bytes.Equal(orig.Msg.Body, []byte{7, 7, 7, 7}) {
		t.Fatal("original mutated in place")
	}
}
