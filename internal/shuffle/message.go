package shuffle

import (
	"errors"
	"fmt"
	"io"

	"dissent/internal/crypto"
)

// VecWidth returns the number of group elements needed to carry a
// msgLen-byte message in group g.
func VecWidth(g crypto.Group, msgLen int) int {
	lim := g.EmbedLimit()
	if msgLen == 0 {
		return 1
	}
	return (msgLen + lim - 1) / lim
}

// EmbedMessage splits msg into chunks and embeds each into a group
// element, padding with empty embeddings up to width so every shuffle
// input has identical shape (a requirement for unlinkability: vector
// width must not depend on the message).
func EmbedMessage(g crypto.Group, msg []byte, width int, r io.Reader) ([]crypto.Element, error) {
	lim := g.EmbedLimit()
	if len(msg) > width*lim {
		return nil, fmt.Errorf("shuffle: %d-byte message exceeds width %d capacity %d",
			len(msg), width, width*lim)
	}
	out := make([]crypto.Element, width)
	for c := 0; c < width; c++ {
		lo := c * lim
		hi := lo + lim
		var chunk []byte
		if lo < len(msg) {
			if hi > len(msg) {
				hi = len(msg)
			}
			chunk = msg[lo:hi]
		}
		e, err := g.Embed(chunk, r)
		if err != nil {
			return nil, err
		}
		out[c] = e
	}
	return out, nil
}

// ExtractMessage reassembles a message from embedded elements. A chunk
// shorter than the embed limit terminates the message, mirroring
// EmbedMessage's layout.
func ExtractMessage(g crypto.Group, elems []crypto.Element) ([]byte, error) {
	if len(elems) == 0 {
		return nil, errors.New("shuffle: empty element vector")
	}
	lim := g.EmbedLimit()
	var msg []byte
	for _, e := range elems {
		chunk, err := g.Extract(e)
		if err != nil {
			return nil, err
		}
		msg = append(msg, chunk...)
		if len(chunk) < lim {
			break
		}
	}
	return msg, nil
}

// KeyShuffle runs a width-1 shuffle of bare public-key elements (no
// embedding needed): the scheduling shuffle of §3.10. It returns the
// permuted pseudonym keys.
func KeyShuffle(g crypto.Group, servers []*crypto.KeyPair, pseudonymKeys []crypto.Element, shadows int, r io.Reader) ([]crypto.Element, error) {
	pubs := make([]crypto.Element, len(servers))
	for i, s := range servers {
		pubs[i] = s.Public
	}
	in := make([]Vec, len(pseudonymKeys))
	for i, k := range pseudonymKeys {
		v, err := PrepareInput(g, pubs, []crypto.Element{k}, r)
		if err != nil {
			return nil, err
		}
		in[i] = v
	}
	plain, _, err := Run(g, servers, in, shadows, r)
	if err != nil {
		return nil, err
	}
	out := make([]crypto.Element, len(plain))
	for i, v := range plain {
		out[i] = v[0]
	}
	return out, nil
}

// MessageShuffle runs a general message shuffle: each client's message
// is embedded into a fixed-width vector, onion-encrypted, and mixed.
// Every message must fit in width elements. Used for accusations
// (§3.9) and any anonymous bootstrap message.
func MessageShuffle(g crypto.Group, servers []*crypto.KeyPair, msgs [][]byte, width, shadows int, r io.Reader) ([][]byte, error) {
	pubs := make([]crypto.Element, len(servers))
	for i, s := range servers {
		pubs[i] = s.Public
	}
	in := make([]Vec, len(msgs))
	for i, m := range msgs {
		elems, err := EmbedMessage(g, m, width, r)
		if err != nil {
			return nil, err
		}
		v, err := PrepareInput(g, pubs, elems, r)
		if err != nil {
			return nil, err
		}
		in[i] = v
	}
	plain, _, err := Run(g, servers, in, shadows, r)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(plain))
	for i, v := range plain {
		m, err := ExtractMessage(g, v)
		if err != nil {
			return nil, fmt.Errorf("shuffle: output %d: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}
