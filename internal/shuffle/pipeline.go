package shuffle

import (
	"errors"
	"fmt"
	"io"

	"dissent/internal/crypto"
)

// StepOutput is everything server j publishes for its turn in the mix:
// the re-encrypted permuted list, the permutation proof, the stripped
// list (its decryption layer removed), the decryption shares, and a
// batch Chaum–Pedersen proof that the shares match its public key.
type StepOutput struct {
	Shuffled []Vec
	Proof    *Proof
	Stripped []Vec
	Shares   []Vec // share vectors: Shares[i][c].C1 unused; kept as Ciphertext for shape symmetry
	DLEQ     crypto.DLEQProof
}

// shareElements flattens C1 bases and share values for batch DLEQ.
func flattenForDLEQ(g crypto.Group, cts []Vec, shares []Vec) (bs, ds []crypto.Element) {
	for i := range cts {
		for c := range cts[i] {
			bs = append(bs, cts[i][c].C1)
			ds = append(ds, shares[i][c].C2)
		}
	}
	return bs, ds
}

// Step runs one server's turn: re-encrypt+permute under remainingKey
// (the aggregate of this and all later servers' public keys), prove the
// permutation with the given shadow count, then verifiably strip this
// server's layer.
func Step(g crypto.Group, key *crypto.KeyPair, remainingKey crypto.Element, in []Vec, shadows int, r io.Reader) (*StepOutput, error) {
	if key.Private == nil {
		return nil, errors.New("shuffle: server step requires a private key")
	}
	shuffled, _, proof, err := Prove(g, remainingKey, in, shadows, r)
	if err != nil {
		return nil, err
	}
	out := &StepOutput{Shuffled: shuffled, Proof: proof}
	out.Stripped = make([]Vec, len(shuffled))
	out.Shares = make([]Vec, len(shuffled))
	for i, v := range shuffled {
		out.Stripped[i] = make(Vec, len(v))
		out.Shares[i] = make(Vec, len(v))
		for c, ct := range v {
			share := crypto.DecryptShare(g, key.Private, ct)
			out.Shares[i][c] = crypto.Ciphertext{C1: ct.C1, C2: share}
			out.Stripped[i][c] = crypto.StripLayer(g, ct, share)
		}
	}
	bs, ds := flattenForDLEQ(g, shuffled, out.Shares)
	ctx := crypto.Hash("dissent/shuffle-strip", g.Encode(key.Public), encodeVecs(g, shuffled))
	dleq, err := crypto.ProveDLEQBatch(g, key.Private, bs, ds, key.Public, ctx, r)
	if err != nil {
		return nil, err
	}
	out.DLEQ = dleq
	return out, nil
}

// VerifyStep checks one server's published StepOutput against its
// input list, public key, and the remaining aggregate key.
func VerifyStep(g crypto.Group, serverPub, remainingKey crypto.Element, in []Vec, out *StepOutput) error {
	if out == nil {
		return ErrShape
	}
	if err := Verify(g, remainingKey, in, out.Shuffled, out.Proof); err != nil {
		return err
	}
	n := len(out.Shuffled)
	if len(out.Stripped) != n || len(out.Shares) != n {
		return ErrShape
	}
	// Check the stripped list is consistent with the published shares
	// and that the shares carry the server's key exponent.
	for i := 0; i < n; i++ {
		if len(out.Stripped[i]) != len(out.Shuffled[i]) || len(out.Shares[i]) != len(out.Shuffled[i]) {
			return ErrShape
		}
		for c := range out.Shuffled[i] {
			want := crypto.StripLayer(g, out.Shuffled[i][c], out.Shares[i][c].C2)
			got := out.Stripped[i][c]
			if !g.Equal(want.C1, got.C1) || !g.Equal(want.C2, got.C2) {
				return fmt.Errorf("%w: stripped list inconsistent at %d/%d", ErrBadShares, i, c)
			}
		}
	}
	bs, ds := flattenForDLEQ(g, out.Shuffled, out.Shares)
	ctx := crypto.Hash("dissent/shuffle-strip", g.Encode(serverPub), encodeVecs(g, out.Shuffled))
	if err := crypto.VerifyDLEQBatch(g, bs, ds, serverPub, out.DLEQ, ctx); err != nil {
		return fmt.Errorf("%w: %v", ErrBadShares, err)
	}
	return nil
}

// Run executes a complete mix locally: every server shuffles and strips
// in order, each step verified by the caller on behalf of all other
// servers. It returns the final plaintext vectors (as elements) plus
// each step's output for auditing. Run is used by tests and by the
// in-process session bootstrap; the networked protocol in internal/core
// performs the same steps across transports.
func Run(g crypto.Group, servers []*crypto.KeyPair, inputs []Vec, shadows int, r io.Reader) ([][]crypto.Element, []*StepOutput, error) {
	if len(servers) == 0 {
		return nil, nil, errors.New("shuffle: no servers")
	}
	pubs := make([]crypto.Element, len(servers))
	for i, s := range servers {
		pubs[i] = s.Public
	}
	cur := inputs
	steps := make([]*StepOutput, 0, len(servers))
	for j, srv := range servers {
		remaining := crypto.AggregateKeys(g, pubs[j:])
		out, err := Step(g, srv, remaining, cur, shadows, r)
		if err != nil {
			return nil, nil, fmt.Errorf("shuffle: server %d: %w", j, err)
		}
		if err := VerifyStep(g, srv.Public, remaining, cur, out); err != nil {
			return nil, nil, fmt.Errorf("shuffle: server %d: %w", j, err)
		}
		steps = append(steps, out)
		cur = out.Stripped
	}
	plain := make([][]crypto.Element, len(cur))
	for i, v := range cur {
		plain[i] = make([]crypto.Element, len(v))
		for c, ct := range v {
			plain[i][c] = ct.C2
		}
	}
	return plain, steps, nil
}

// PrepareInput onion-encrypts a vector of plaintext elements under the
// aggregate of all server keys, producing a shuffle input.
func PrepareInput(g crypto.Group, serverPubs []crypto.Element, plain []crypto.Element, r io.Reader) (Vec, error) {
	agg := crypto.AggregateKeys(g, serverPubs)
	v := make(Vec, len(plain))
	for c, m := range plain {
		ct, _, err := crypto.Encrypt(g, agg, m, r)
		if err != nil {
			return nil, err
		}
		v[c] = ct
	}
	return v, nil
}
