package shuffle

import (
	"math/big"
	"sort"
	"testing"

	"dissent/internal/crypto"
)

const testShadows = 6

func TestPermutationUniform(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17} {
		p, err := Permutation(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !isPerm(p) {
			t.Fatalf("Permutation(%d) = %v not a permutation", n, p)
		}
	}
	// Statistical smoke test: over many draws of n=3, each of the 6
	// orders should appear.
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		p, _ := Permutation(3, nil)
		seen[string([]byte{byte(p[0]), byte(p[1]), byte(p[2])})] = true
	}
	if len(seen) != 6 {
		t.Errorf("saw %d/6 permutations of 3 elements in 200 draws", len(seen))
	}
}

func TestInvertPerm(t *testing.T) {
	p := []int{2, 0, 3, 1}
	inv := invertPerm(p)
	for i := range p {
		if inv[p[i]] != i {
			t.Fatalf("invertPerm wrong at %d", i)
		}
	}
}

func TestIsPerm(t *testing.T) {
	cases := []struct {
		p  []int
		ok bool
	}{
		{[]int{0}, true},
		{[]int{1, 0, 2}, true},
		{[]int{0, 0, 2}, false},
		{[]int{0, 3, 1}, false},
		{[]int{-1, 0, 1}, false},
		{nil, true},
	}
	for _, c := range cases {
		if got := isPerm(c.p); got != c.ok {
			t.Errorf("isPerm(%v) = %v, want %v", c.p, got, c.ok)
		}
	}
}

// makeInputs builds n width-w shuffle inputs of random elements under a
// single keypair, returning the plaintexts for later comparison.
func makeInputs(t *testing.T, g crypto.Group, key crypto.Element, n, w int) ([]Vec, [][]crypto.Element) {
	t.Helper()
	in := make([]Vec, n)
	plain := make([][]crypto.Element, n)
	for i := range in {
		in[i] = make(Vec, w)
		plain[i] = make([]crypto.Element, w)
		for c := 0; c < w; c++ {
			m, err := g.RandomElement(nil)
			if err != nil {
				t.Fatal(err)
			}
			plain[i][c] = m
			ct, _, err := crypto.Encrypt(g, key, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			in[i][c] = ct
		}
	}
	return in, plain
}

func TestProveVerify(t *testing.T) {
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	for _, shape := range []struct{ n, w int }{{1, 1}, {4, 1}, {5, 3}} {
		in, _ := makeInputs(t, g, kp.Public, shape.n, shape.w)
		out, perm, proof, err := Prove(g, kp.Public, in, testShadows, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !isPerm(perm) {
			t.Fatal("Prove returned a non-permutation")
		}
		if err := Verify(g, kp.Public, in, out, proof); err != nil {
			t.Errorf("n=%d w=%d: valid proof rejected: %v", shape.n, shape.w, err)
		}
	}
}

func TestVerifyRejectsTamperedOutput(t *testing.T) {
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	in, _ := makeInputs(t, g, kp.Public, 4, 1)
	out, _, proof, err := Prove(g, kp.Public, in, testShadows, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Replace one output ciphertext with an encryption of a different
	// message; all challenge bits that open the right side now fail.
	evil, _ := g.RandomElement(nil)
	ct, _, _ := crypto.Encrypt(g, kp.Public, evil, nil)
	out[2][0] = ct
	if err := Verify(g, kp.Public, in, out, proof); err == nil {
		t.Error("tampered output accepted")
	}
}

func TestVerifyRejectsShapeMismatch(t *testing.T) {
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	in, _ := makeInputs(t, g, kp.Public, 3, 1)
	out, _, proof, _ := Prove(g, kp.Public, in, testShadows, nil)

	if err := Verify(g, kp.Public, in[:2], out, proof); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Verify(g, kp.Public, in, out, nil); err == nil {
		t.Error("nil proof accepted")
	}
	bad := *proof
	bad.Perms = bad.Perms[:1]
	if err := Verify(g, kp.Public, in, out, &bad); err == nil {
		t.Error("truncated proof accepted")
	}
}

func TestVerifyRejectsForgedPermutationReveal(t *testing.T) {
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	in, _ := makeInputs(t, g, kp.Public, 4, 1)
	out, _, proof, _ := Prove(g, kp.Public, in, testShadows, nil)
	proof.Perms[0] = []int{0, 0, 1, 2} // not a permutation
	if err := Verify(g, kp.Public, in, out, proof); err == nil {
		t.Error("non-permutation reveal accepted")
	}
}

func TestStepAndVerifyStep(t *testing.T) {
	g := crypto.P256()
	srv, _ := crypto.GenerateKeyPair(g, nil)
	in, plain := makeInputs(t, g, srv.Public, 4, 2)
	out, err := Step(g, srv, srv.Public, in, testShadows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyStep(g, srv.Public, srv.Public, in, out); err != nil {
		t.Fatalf("valid step rejected: %v", err)
	}
	// Single server: stripped C2 values are the plaintexts, permuted.
	got := encodeSorted(g, flattenPlain(out))
	want := encodeSorted(g, plain)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("stripped plaintexts differ from inputs")
		}
	}
}

func flattenPlain(out *StepOutput) [][]crypto.Element {
	res := make([][]crypto.Element, len(out.Stripped))
	for i, v := range out.Stripped {
		res[i] = make([]crypto.Element, len(v))
		for c, ct := range v {
			res[i][c] = ct.C2
		}
	}
	return res
}

func encodeSorted(g crypto.Group, vs [][]crypto.Element) []string {
	var ss []string
	for _, v := range vs {
		var s string
		for _, e := range v {
			s += string(g.Encode(e))
		}
		ss = append(ss, s)
	}
	sort.Strings(ss)
	return ss
}

func TestVerifyStepRejectsWrongShare(t *testing.T) {
	g := crypto.P256()
	srv, _ := crypto.GenerateKeyPair(g, nil)
	in, _ := makeInputs(t, g, srv.Public, 3, 1)
	out, _ := Step(g, srv, srv.Public, in, testShadows, nil)

	// A malicious server publishes a corrupted share (and a matching
	// stripped value so the consistency check alone can't catch it);
	// the DLEQ batch proof must fail.
	forged, _ := g.RandomElement(nil)
	out.Shares[1][0].C2 = forged
	out.Stripped[1][0] = crypto.StripLayer(g, out.Shuffled[1][0], forged)
	if err := VerifyStep(g, srv.Public, srv.Public, in, out); err == nil {
		t.Error("forged decryption share accepted")
	}
}

func TestRunMultiServer(t *testing.T) {
	g := crypto.P256()
	const m, n = 3, 5
	servers := make([]*crypto.KeyPair, m)
	pubs := make([]crypto.Element, m)
	for i := range servers {
		servers[i], _ = crypto.GenerateKeyPair(g, nil)
		pubs[i] = servers[i].Public
	}
	plain := make([][]crypto.Element, n)
	in := make([]Vec, n)
	for i := range in {
		e, _ := g.RandomElement(nil)
		plain[i] = []crypto.Element{e}
		v, err := PrepareInput(g, pubs, plain[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		in[i] = v
	}
	outPlain, steps, err := Run(g, servers, in, testShadows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != m {
		t.Fatalf("got %d steps, want %d", len(steps), m)
	}
	got := encodeSorted(g, outPlain)
	want := encodeSorted(g, plain)
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("multi-server shuffle lost or corrupted a message")
		}
	}
}

func TestRunNoServers(t *testing.T) {
	g := crypto.P256()
	if _, _, err := Run(g, nil, nil, testShadows, nil); err == nil {
		t.Error("Run with no servers succeeded")
	}
}

func TestProveEmptyInput(t *testing.T) {
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	if _, _, _, err := Prove(g, kp.Public, nil, testShadows, nil); err == nil {
		t.Error("Prove of empty input succeeded")
	}
}

func TestProofSoundnessStatistical(t *testing.T) {
	// A forged proof for an unrelated output list should be rejected;
	// with k shadows the accept probability is 2^-k, so build the proof
	// honestly for (in -> out1) but present out2.
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	in, _ := makeInputs(t, g, kp.Public, 3, 1)
	_, _, proof, _ := Prove(g, kp.Public, in, 12, nil)
	other, _ := makeInputs(t, g, kp.Public, 3, 1)
	if err := Verify(g, kp.Public, in, other, proof); err == nil {
		t.Error("proof transplanted to unrelated output accepted")
	}
}

func TestShadowRandomnessInRange(t *testing.T) {
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	in, _ := makeInputs(t, g, kp.Public, 3, 1)
	_, _, proof, _ := Prove(g, kp.Public, in, testShadows, nil)
	q := g.Order()
	for t2, rnd := range proof.Rands {
		for _, row := range rnd {
			for _, k := range row {
				if k.Sign() < 0 || k.Cmp(q) >= 0 {
					t.Fatalf("shadow %d randomness out of range", t2)
				}
			}
		}
	}
}

func TestChallengeBitsDeterministic(t *testing.T) {
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	in, _ := makeInputs(t, g, kp.Public, 2, 1)
	out, _, proof, _ := Prove(g, kp.Public, in, testShadows, nil)
	b1 := challengeBits(g, kp.Public, in, out, proof.Shadows)
	b2 := challengeBits(g, kp.Public, in, out, proof.Shadows)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("challenge bits not deterministic")
		}
	}
	// Changing the output must change the challenge (with overwhelming
	// probability at least one bit among many trials — here just check
	// the byte strings differ).
	out2 := append([]Vec(nil), out...)
	out2[0] = out[1]
	out2[1] = out[0]
	b3 := challengeBits(g, kp.Public, in, out2, proof.Shadows)
	same := true
	for i := range b1 {
		if b1[i] != b3[i] {
			same = false
		}
	}
	if same && len(b1) >= 6 {
		t.Log("warning: challenge unchanged after output swap (possible but unlikely)")
	}
}

func TestManyShadowsChallengeExtension(t *testing.T) {
	// Exercise the digest-extension path (k > 256 would need it; use a
	// smaller k but confirm bits exist for each shadow).
	g := crypto.P256()
	kp, _ := crypto.GenerateKeyPair(g, nil)
	in, _ := makeInputs(t, g, kp.Public, 1, 1)
	out, _, proof, err := Prove(g, kp.Public, in, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, kp.Public, in, out, proof); err != nil {
		t.Errorf("k=20 proof rejected: %v", err)
	}
}

var _ = big.NewInt // keep math/big import if edits drop usages
