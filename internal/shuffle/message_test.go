package shuffle

import (
	"bytes"
	"sort"
	"testing"

	"dissent/internal/crypto"
)

func TestVecWidth(t *testing.T) {
	g := crypto.P256()
	lim := g.EmbedLimit()
	cases := []struct{ msgLen, want int }{
		{0, 1},
		{1, 1},
		{lim, 1},
		{lim + 1, 2},
		{3*lim - 1, 3},
		{3 * lim, 3},
	}
	for _, c := range cases {
		if got := VecWidth(g, c.msgLen); got != c.want {
			t.Errorf("VecWidth(%d) = %d, want %d", c.msgLen, got, c.want)
		}
	}
}

func TestEmbedExtractMessage(t *testing.T) {
	for _, g := range []crypto.Group{crypto.P256()} {
		lim := g.EmbedLimit()
		msgs := [][]byte{
			nil,
			[]byte("short"),
			bytes.Repeat([]byte{0x5A}, lim),     // exactly one chunk
			bytes.Repeat([]byte{0x5A}, lim+1),   // spills into second
			bytes.Repeat([]byte{0x5A}, 3*lim-2), // three chunks
		}
		for _, m := range msgs {
			w := VecWidth(g, len(m)) + 1 // extra padding element
			elems, err := EmbedMessage(g, m, w, nil)
			if err != nil {
				t.Fatalf("EmbedMessage(%d bytes): %v", len(m), err)
			}
			if len(elems) != w {
				t.Fatalf("got %d elements, want %d", len(elems), w)
			}
			got, err := ExtractMessage(g, elems)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, m) && !(len(got) == 0 && len(m) == 0) {
				t.Fatalf("round-trip of %d bytes failed", len(m))
			}
		}
	}
}

func TestEmbedMessageTooLong(t *testing.T) {
	g := crypto.P256()
	m := make([]byte, 2*g.EmbedLimit()+1)
	if _, err := EmbedMessage(g, m, 2, nil); err == nil {
		t.Error("oversized message accepted")
	}
}

func TestExtractMessageEmpty(t *testing.T) {
	g := crypto.P256()
	if _, err := ExtractMessage(g, nil); err == nil {
		t.Error("empty vector accepted")
	}
}

func TestKeyShuffle(t *testing.T) {
	g := crypto.P256()
	const m, n = 3, 6
	servers := make([]*crypto.KeyPair, m)
	for i := range servers {
		servers[i], _ = crypto.GenerateKeyPair(g, nil)
	}
	keys := make([]crypto.Element, n)
	for i := range keys {
		kp, _ := crypto.GenerateKeyPair(g, nil)
		keys[i] = kp.Public
	}
	out, err := KeyShuffle(g, servers, keys, testShadows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d keys, want %d", len(out), n)
	}
	if !sameElementSet(g, keys, out) {
		t.Error("key shuffle lost or corrupted keys")
	}
}

func TestMessageShuffle(t *testing.T) {
	g := crypto.P256()
	const m = 2
	servers := make([]*crypto.KeyPair, m)
	for i := range servers {
		servers[i], _ = crypto.GenerateKeyPair(g, nil)
	}
	msgs := [][]byte{
		[]byte("first accusation"),
		[]byte("a significantly longer message that spans multiple embedded group elements for sure"),
		{}, // null message from a non-accusing client
		[]byte("third"),
	}
	width := 0
	for _, m := range msgs {
		if w := VecWidth(g, len(m)); w > width {
			width = w
		}
	}
	out, err := MessageShuffle(g, servers, msgs, width, testShadows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(msgs) {
		t.Fatalf("got %d messages, want %d", len(out), len(msgs))
	}
	if !sameByteSet(msgs, out) {
		t.Errorf("message shuffle lost or corrupted messages: %q vs %q", msgs, out)
	}
}

func TestMessageShuffleModP(t *testing.T) {
	// General message shuffles run in the mod-p group in production
	// (cheap embedding); verify the whole pipeline there too.
	g := crypto.ModP2048()
	servers := []*crypto.KeyPair{}
	for i := 0; i < 2; i++ {
		kp, err := crypto.GenerateKeyPair(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, kp)
	}
	msgs := [][]byte{[]byte("modp message one"), []byte("modp message two")}
	out, err := MessageShuffle(g, servers, msgs, 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameByteSet(msgs, out) {
		t.Error("modp message shuffle mismatch")
	}
}

func sameElementSet(g crypto.Group, a, b []crypto.Element) bool {
	if len(a) != len(b) {
		return false
	}
	ea := make([]string, len(a))
	eb := make([]string, len(b))
	for i := range a {
		ea[i] = string(g.Encode(a[i]))
		eb[i] = string(g.Encode(b[i]))
	}
	sort.Strings(ea)
	sort.Strings(eb)
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func sameByteSet(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	sa := make([]string, len(a))
	sb := make([]string, len(b))
	for i := range a {
		sa[i] = string(a[i])
		sb[i] = string(b[i])
	}
	sort.Strings(sa)
	sort.Strings(sb)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
