// Package shuffle implements Dissent's verifiable shuffle (§3.10): a
// serial ElGamal re-encryption/decryption mix over an anytrust server
// set. Each server in turn re-randomizes and permutes the ciphertext
// list, proves the permutation with a shadow-mix (cut-and-choose)
// proof, and verifiably strips its own decryption layer with a batch
// Chaum–Pedersen proof. If at least one server is honest, no coalition
// of the others learns the permutation; if any server cheats, every
// honest server detects it.
//
// The shuffle operates on fixed-width vectors of ciphertexts so that
// multi-element messages (general message shuffles, e.g. accusations)
// travel as units; pseudonym-key shuffles use width 1.
package shuffle

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"dissent/internal/crypto"
)

// Vec is one shuffle input: a fixed-width vector of ElGamal
// ciphertexts that is permuted as a unit.
type Vec []crypto.Ciphertext

// Errors returned by shuffle verification.
var (
	ErrBadProof  = errors.New("shuffle: proof verification failed")
	ErrBadShares = errors.New("shuffle: decryption share proof failed")
	ErrShape     = errors.New("shuffle: inconsistent input shape")
)

// DefaultShadows is the default shadow count k for the cut-and-choose
// permutation proof: a cheating server escapes detection with
// probability 2^-k.
const DefaultShadows = 16

// Permutation returns a uniform permutation of [0,n) using randomness
// from r (crypto/rand if nil).
func Permutation(n int, r io.Reader) ([]int, error) {
	if r == nil {
		r = rand.Reader
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Fisher–Yates with rejection-free uniform draws.
	for i := n - 1; i > 0; i-- {
		jBig, err := rand.Int(r, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, err
		}
		j := int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}

// invertPerm returns the inverse permutation.
func invertPerm(p []int) []int {
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// isPerm reports whether p is a permutation of [0,len(p)).
func isPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// reencVec re-encrypts every component of v under key y with explicit
// randomness ks (one scalar per component).
func reencVec(g crypto.Group, y crypto.Element, v Vec, ks []*big.Int) Vec {
	out := make(Vec, len(v))
	for i, ct := range v {
		out[i] = crypto.ReencryptWith(g, y, ct, ks[i])
	}
	return out
}

// shuffleOnce applies output[i] = reenc(input[perm[i]], rnd[i]) across
// a whole list of vectors.
func shuffleOnce(g crypto.Group, y crypto.Element, in []Vec, perm []int, rnd [][]*big.Int) []Vec {
	out := make([]Vec, len(in))
	for i := range out {
		out[i] = reencVec(g, y, in[perm[i]], rnd[i])
	}
	return out
}

// randMatrix draws a len(in) x width matrix of scalars.
func randMatrix(g crypto.Group, n, width int, r io.Reader) ([][]*big.Int, error) {
	m := make([][]*big.Int, n)
	for i := range m {
		m[i] = make([]*big.Int, width)
		for j := range m[i] {
			k, err := g.RandomScalar(r)
			if err != nil {
				return nil, err
			}
			m[i][j] = k
		}
	}
	return m, nil
}

// Proof is a shadow-mix proof that an output list is a re-encrypted
// permutation of an input list under a known public key. For each of k
// independent "shadow" shuffles the Fiat–Shamir challenge bit selects
// which side to open: the shadow's own permutation (left), or the
// composition taking the shadow to the real output (right). A prover
// who does not know a valid permutation fails each challenge with
// probability 1/2.
type Proof struct {
	Shadows [][]Vec        // k shadow shuffles of the input
	Perms   [][]int        // revealed permutation per shadow (σ or ρ)
	Rands   [][][]*big.Int // revealed randomness per shadow (s or u)
}

// Prove shuffles in under key y and returns the output list, the
// permutation and randomness used (needed later for decryption
// bookkeeping by callers that are also the prover), and the proof.
func Prove(g crypto.Group, y crypto.Element, in []Vec, shadows int, r io.Reader) (out []Vec, perm []int, proof *Proof, err error) {
	n := len(in)
	if n == 0 {
		return nil, nil, nil, errors.New("shuffle: empty input")
	}
	width := len(in[0])
	for _, v := range in {
		if len(v) != width {
			return nil, nil, nil, ErrShape
		}
	}
	perm, err = Permutation(n, r)
	if err != nil {
		return nil, nil, nil, err
	}
	rnd, err := randMatrix(g, n, width, r)
	if err != nil {
		return nil, nil, nil, err
	}
	out = shuffleOnce(g, y, in, perm, rnd)

	proof = &Proof{
		Shadows: make([][]Vec, shadows),
		Perms:   make([][]int, shadows),
		Rands:   make([][][]*big.Int, shadows),
	}
	sigma := make([][]int, shadows)
	srnd := make([][][]*big.Int, shadows)
	for t := 0; t < shadows; t++ {
		sigma[t], err = Permutation(n, r)
		if err != nil {
			return nil, nil, nil, err
		}
		srnd[t], err = randMatrix(g, n, width, r)
		if err != nil {
			return nil, nil, nil, err
		}
		proof.Shadows[t] = shuffleOnce(g, y, in, sigma[t], srnd[t])
	}

	challenge := challengeBits(g, y, in, out, proof.Shadows)
	q := g.Order()
	for t := 0; t < shadows; t++ {
		if challenge[t] == 0 {
			// Open the shadow itself.
			proof.Perms[t] = sigma[t]
			proof.Rands[t] = srnd[t]
			continue
		}
		// Open the composition shadow→output:
		// out[i] = reenc(in[perm[i]]); shadow[m] = reenc(in[sigma[m]]).
		// Choose m with sigma[m] = perm[i], i.e. m = sigmaInv[perm[i]].
		// Then out[i] = reenc(shadow[rho[i]], u[i]) with
		// u[i][c] = rnd[i][c] - srnd[rho[i]][c].
		sigmaInv := invertPerm(sigma[t])
		rho := make([]int, n)
		u := make([][]*big.Int, n)
		for i := 0; i < n; i++ {
			rho[i] = sigmaInv[perm[i]]
			u[i] = make([]*big.Int, width)
			for c := 0; c < width; c++ {
				d := new(big.Int).Sub(rnd[i][c], srnd[t][rho[i]][c])
				u[i][c] = d.Mod(d, q)
			}
		}
		proof.Perms[t] = rho
		proof.Rands[t] = u
	}
	return out, perm, proof, nil
}

// Verify checks that out is a valid re-encrypted permutation of in
// under key y according to proof.
func Verify(g crypto.Group, y crypto.Element, in, out []Vec, proof *Proof) error {
	n := len(in)
	if n == 0 || len(out) != n || proof == nil {
		return ErrShape
	}
	width := len(in[0])
	for _, v := range in {
		if len(v) != width {
			return ErrShape
		}
	}
	for _, v := range out {
		if len(v) != width {
			return ErrShape
		}
	}
	k := len(proof.Shadows)
	if len(proof.Perms) != k || len(proof.Rands) != k || k == 0 {
		return ErrBadProof
	}
	challenge := challengeBits(g, y, in, out, proof.Shadows)
	for t := 0; t < k; t++ {
		shadow := proof.Shadows[t]
		p := proof.Perms[t]
		rnd := proof.Rands[t]
		if len(shadow) != n || len(p) != n || len(rnd) != n || !isPerm(p) {
			return ErrBadProof
		}
		var src, dst []Vec
		if challenge[t] == 0 {
			src, dst = in, shadow // shadow[i] = reenc(in[p[i]], rnd[i])
		} else {
			src, dst = shadow, out // out[i] = reenc(shadow[p[i]], rnd[i])
		}
		for i := 0; i < n; i++ {
			if len(rnd[i]) != width || len(dst[i]) != width {
				return ErrBadProof
			}
			want := reencVec(g, y, src[p[i]], rnd[i])
			for c := 0; c < width; c++ {
				if !g.Equal(want[c].C1, dst[i][c].C1) || !g.Equal(want[c].C2, dst[i][c].C2) {
					return fmt.Errorf("%w: shadow %d item %d", ErrBadProof, t, i)
				}
			}
		}
	}
	return nil
}

// challengeBits derives one Fiat–Shamir bit per shadow from the full
// transcript (key, input, output, all shadow lists).
func challengeBits(g crypto.Group, y crypto.Element, in, out []Vec, shadows [][]Vec) []byte {
	parts := [][]byte{g.Encode(y), encodeVecs(g, in), encodeVecs(g, out)}
	for _, s := range shadows {
		parts = append(parts, encodeVecs(g, s))
	}
	seed := crypto.Hash("dissent/shuffle-challenge", parts...)
	bits := make([]byte, len(shadows))
	for t := range bits {
		if t/8 >= len(seed) {
			// Extend the digest for k > 256 shadows.
			seed = append(seed, crypto.Hash("dissent/shuffle-challenge-ext", seed)...)
		}
		bits[t] = (seed[t/8] >> (uint(t) % 8)) & 1
	}
	return bits
}

func encodeVecs(g crypto.Group, vs []Vec) []byte {
	var buf []byte
	for _, v := range vs {
		for _, ct := range v {
			buf = append(buf, crypto.EncodeCiphertext(g, ct)...)
		}
	}
	return buf
}
