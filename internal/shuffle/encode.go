package shuffle

import (
	"encoding/binary"
	"errors"
	"math/big"

	"dissent/internal/crypto"
)

// Wire encoding for StepOutput, used when shuffle steps travel between
// servers (internal/core MsgShuffleStep / MsgBlameStep).

var errTruncated = errors.New("shuffle: truncated encoding")

type wbuf struct{ b []byte }

func (w *wbuf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}

type rbuf struct{ b []byte }

func (r *rbuf) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, errTruncated
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *rbuf) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint32(len(r.b)) < n {
		return nil, errTruncated
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v, nil
}

func encodeVecList(w *wbuf, g crypto.Group, vs []Vec) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.u32(uint32(len(v)))
		for _, ct := range v {
			w.b = append(w.b, crypto.EncodeCiphertext(g, ct)...)
		}
	}
}

func decodeVecList(r *rbuf, g crypto.Group) ([]Vec, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	ctLen := 2 * g.ElementLen()
	if uint64(n)*4 > uint64(len(r.b))+4 {
		return nil, errTruncated
	}
	out := make([]Vec, n)
	for i := range out {
		w, err := r.u32()
		if err != nil {
			return nil, err
		}
		if uint64(w)*uint64(ctLen) > uint64(len(r.b)) {
			return nil, errTruncated
		}
		out[i] = make(Vec, w)
		for c := range out[i] {
			ct, err := crypto.DecodeCiphertext(g, r.b[:ctLen])
			if err != nil {
				return nil, err
			}
			r.b = r.b[ctLen:]
			out[i][c] = ct
		}
	}
	return out, nil
}

// EncodeStepOutput serializes a StepOutput for transmission.
func EncodeStepOutput(g crypto.Group, s *StepOutput) []byte {
	var w wbuf
	encodeVecList(&w, g, s.Shuffled)
	encodeVecList(&w, g, s.Stripped)
	encodeVecList(&w, g, s.Shares)
	// Proof.
	w.u32(uint32(len(s.Proof.Shadows)))
	for t := range s.Proof.Shadows {
		encodeVecList(&w, g, s.Proof.Shadows[t])
		perm := s.Proof.Perms[t]
		w.u32(uint32(len(perm)))
		for _, p := range perm {
			w.u32(uint32(p))
		}
		rnd := s.Proof.Rands[t]
		w.u32(uint32(len(rnd)))
		for _, row := range rnd {
			w.u32(uint32(len(row)))
			for _, k := range row {
				w.bytes(k.Bytes())
			}
		}
	}
	// DLEQ.
	w.bytes(s.DLEQ.C.Bytes())
	w.bytes(s.DLEQ.Z.Bytes())
	return w.b
}

// DecodeStepOutput parses an encoded StepOutput.
func DecodeStepOutput(g crypto.Group, data []byte) (*StepOutput, error) {
	r := rbuf{data}
	out := &StepOutput{Proof: &Proof{}}
	var err error
	if out.Shuffled, err = decodeVecList(&r, g); err != nil {
		return nil, err
	}
	if out.Stripped, err = decodeVecList(&r, g); err != nil {
		return nil, err
	}
	if out.Shares, err = decodeVecList(&r, g); err != nil {
		return nil, err
	}
	nShadows, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(nShadows) > uint64(len(r.b)) {
		return nil, errTruncated
	}
	out.Proof.Shadows = make([][]Vec, nShadows)
	out.Proof.Perms = make([][]int, nShadows)
	out.Proof.Rands = make([][][]*big.Int, nShadows)
	for t := range out.Proof.Shadows {
		if out.Proof.Shadows[t], err = decodeVecList(&r, g); err != nil {
			return nil, err
		}
		np, err := r.u32()
		if err != nil {
			return nil, err
		}
		if uint64(np)*4 > uint64(len(r.b)) {
			return nil, errTruncated
		}
		out.Proof.Perms[t] = make([]int, np)
		for i := range out.Proof.Perms[t] {
			v, err := r.u32()
			if err != nil {
				return nil, err
			}
			out.Proof.Perms[t][i] = int(v)
		}
		nr, err := r.u32()
		if err != nil {
			return nil, err
		}
		if uint64(nr)*4 > uint64(len(r.b))+4 {
			return nil, errTruncated
		}
		out.Proof.Rands[t] = make([][]*big.Int, nr)
		for i := range out.Proof.Rands[t] {
			nc, err := r.u32()
			if err != nil {
				return nil, err
			}
			if uint64(nc)*4 > uint64(len(r.b))+4 {
				return nil, errTruncated
			}
			out.Proof.Rands[t][i] = make([]*big.Int, nc)
			for c := range out.Proof.Rands[t][i] {
				kb, err := r.bytes()
				if err != nil {
					return nil, err
				}
				out.Proof.Rands[t][i][c] = new(big.Int).SetBytes(kb)
			}
		}
	}
	cb, err := r.bytes()
	if err != nil {
		return nil, err
	}
	zb, err := r.bytes()
	if err != nil {
		return nil, err
	}
	out.DLEQ = crypto.DLEQProof{C: new(big.Int).SetBytes(cb), Z: new(big.Int).SetBytes(zb)}
	if len(r.b) != 0 {
		return nil, errors.New("shuffle: trailing bytes in step encoding")
	}
	return out, nil
}
