// Command dissent-bench regenerates every table and figure of the
// paper's evaluation (§5).
//
// Usage:
//
//	dissent-bench -exp all            # everything (takes a while)
//	dissent-bench -exp fig7 -quick    # one experiment, scaled down
//
// Experiments: window-policy (the §5.1 table), fig6, fig7, fig8, fig9,
// fig10, fig11, all. Output is plain text: one series per block,
// "x y ..." rows suitable for gnuplot.
//
// The additional "perf" experiment measures the DC-net data-plane hot
// paths (parallel pad expansion, streaming combine critical path,
// zero-allocation client submit, slot codec) and, with -json FILE,
// writes a machine-readable report — the repository's BENCH_*.json
// perf trajectory is recorded this way:
//
//	dissent-bench -exp perf -json BENCH_seed.json
//
// With -compare FILE the perf run is additionally gated against a
// committed baseline report: any benchmark slower than
// baseline*threshold (default 2x, see -threshold) exits non-zero. CI
// runs this as the bench regression gate:
//
//	dissent-bench -exp perf -quick -compare BENCH_pr7.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dissent/internal/bench"
)

var clientsOverride []int

func main() {
	exp := flag.String("exp", "all", "experiment: window-policy|fig6|fig7|fig8|fig9|fig10|fig11|perf|all")
	quick := flag.Bool("quick", false, "scaled-down configurations")
	clients := flag.String("clients", "", "comma-separated client counts overriding fig7's sweep")
	jsonOut := flag.String("json", "", "with -exp perf: write the JSON perf report to this file")
	compare := flag.String("compare", "", "with -exp perf: gate against this baseline BENCH_*.json, exit 1 on regression")
	threshold := flag.Float64("threshold", 2.0, "with -compare: regression ratio that fails the gate")
	note := flag.String("note", "", "with -exp perf -json: environment caveat recorded in the report")
	flag.Parse()
	log.SetFlags(0)
	if *exp == "perf" {
		runPerf(*quick, *jsonOut, *compare, *threshold, *note)
		return
	}
	if *clients != "" {
		for _, part := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad -clients value %q\n", part)
				os.Exit(2)
			}
			clientsOverride = append(clientsOverride, n)
		}
	}

	run := map[string]func(bool){
		"window-policy": runWindowPolicy,
		"fig6":          runFig6,
		"fig7":          runFig7,
		"fig8":          runFig8,
		"fig9":          runFig9,
		"fig10":         func(q bool) { runFig10(q, false) },
		"fig11":         func(q bool) { runFig10(q, true) },
	}
	if *exp == "all" {
		for _, name := range []string{"window-policy", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
			fmt.Printf("\n===== %s =====\n", name)
			run[name](*quick)
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn(*quick)
}

func runPerf(quick bool, jsonOut, compare string, threshold float64, note string) {
	fmt.Println("# data-plane perf suite (pad expansion, streaming combine, submit path)")
	rep := bench.PerfSuite(quick)
	rep.Note = note
	fmt.Printf("go %s %s/%s GOMAXPROCS=%d\n", rep.GoVersion, rep.GOOS, rep.GOARCH, rep.GOMAXPROCS)
	fmt.Printf("%-44s %-14s %-12s %-10s %s\n", "benchmark", "ns/op", "MB/s", "allocs/op", "B/op")
	for _, r := range rep.Results {
		mbs := "-"
		if r.MBPerSec > 0 {
			mbs = fmt.Sprintf("%.1f", r.MBPerSec)
		}
		fmt.Printf("%-44s %-14.0f %-12s %-10d %d\n", r.Name, r.NsPerOp, mbs, r.AllocsPerOp, r.BytesPerOp)
	}
	if jsonOut != "" {
		b, err := rep.WriteJSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote %s\n", jsonOut)
	}
	if compare != "" {
		baseline, err := bench.ReadPerfReport(compare)
		if err != nil {
			log.Fatal(err)
		}
		regs, skipped := bench.ComparePerf(baseline, rep, threshold)
		for _, s := range skipped {
			fmt.Printf("# gate: skipped %s\n", s)
		}
		if len(regs) > 0 {
			fmt.Printf("# gate: %d regression(s) vs %s (threshold %.1fx):\n", len(regs), compare, threshold)
			for _, r := range regs {
				fmt.Printf("#   %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("# gate: ok vs %s (threshold %.1fx)\n", compare, threshold)
	}
}

func fig6Config(quick bool) bench.Fig6Config {
	if quick {
		return bench.QuickFig6Config()
	}
	return bench.DefaultFig6Config()
}

func runWindowPolicy(quick bool) {
	fmt.Println("# §5.1 window-closure policy table")
	fmt.Println("# paper: 1.1x: 2.3%, 1.2x: 1.5%, 2x: 0.5% of clients missed the window")
	results, err := bench.Fig6(fig6Config(quick))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-15s %-14s %s\n", "policy", "missed-clients", "rounds-at-hard-deadline")
	for _, r := range results {
		fmt.Printf("%-15s %-14s %.1f%%\n", r.Policy.Name,
			fmt.Sprintf("%.1f%%", r.MissedFrac*100), r.DeadlineFrac*100)
	}
}

func runFig6(quick bool) {
	fmt.Println("# Figure 6: CDF of message exchange time per window policy")
	results, err := bench.Fig6(fig6Config(quick))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("\n## policy %s (exchange-time-seconds cumulative-fraction)\n", r.Policy.Name)
		for _, pt := range bench.CDF(r.Times) {
			fmt.Printf("%.3f %.4f\n", pt[0], pt[1])
		}
	}
}

func runFig7(quick bool) {
	fmt.Println("# Figure 7: time per round vs clients (32 servers)")
	cfg := bench.DefaultFig7Config()
	if quick {
		cfg = bench.QuickFig7Config()
	}
	if len(clientsOverride) > 0 {
		cfg.ClientSizes = clientsOverride
	}
	rows, err := bench.Fig7(cfg)
	if err != nil {
		log.Fatal(err)
	}
	printScaleRows(rows)
}

func runFig8(quick bool) {
	fmt.Println("# Figure 8: time per round vs servers (640 clients)")
	cfg := bench.DefaultFig8Config()
	if quick {
		cfg = bench.QuickFig8Config()
	}
	rows, err := bench.Fig8(cfg)
	if err != nil {
		log.Fatal(err)
	}
	printScaleRows(rows)
}

func printScaleRows(rows []bench.ScaleRow) {
	fmt.Printf("%-8s %-8s %-22s %-10s %-12s %-12s %-12s\n",
		"clients", "servers", "scenario", "profile", "submission", "processing", "total")
	for _, r := range rows {
		fmt.Printf("%-8d %-8d %-22s %-10s %-12s %-12s %-12s\n",
			r.Clients, r.Servers, r.Scenario, r.Profile,
			fmtDur(r.Submit), fmtDur(r.Process), fmtDur(r.Total))
	}
}

func runFig9(quick bool) {
	fmt.Println("# Figure 9: full protocol run breakdown (24 servers, 128-byte messages)")
	cfg := bench.DefaultFig9Config()
	if quick {
		cfg.ClientSizes = []int{24, 100}
	}
	rows := bench.Fig9(cfg)
	fmt.Printf("%-8s %-14s %-14s %-16s %-14s\n",
		"clients", "key-shuffle", "dcnet-round", "blame-shuffle", "blame-eval")
	for _, r := range rows {
		fmt.Printf("%-8d %-14s %-14s %-16s %-14s\n", r.Clients,
			fmtDur(r.KeyShuffle), fmtDur(r.DCNetRound), fmtDur(r.BlameShuffle), fmtDur(r.BlameEval))
	}
	vServers, vClients, vShadows := 3, 12, 6
	if !quick {
		vServers, vClients = 4, 24
	}
	fmt.Printf("\n# model validation against real shuffle execution (%d servers, %d clients, k=%d)\n",
		vServers, vClients, vShadows)
	v, err := bench.Fig9Validate(vServers, vClients, vShadows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key shuffle: real %-12s model %-12s\n", fmtDur(v.KeyShuffleReal), fmtDur(v.KeyShuffleModel))
	fmt.Printf("msg shuffle: real %-12s model %-12s\n", fmtDur(v.MsgShuffleReal), fmtDur(v.MsgShuffleModel))
}

func runFig10(quick, cdf bool) {
	if cdf {
		fmt.Println("# Figure 11: CDF of page download times")
	} else {
		fmt.Println("# Figure 10: Alexa-Top-100 download times per configuration")
	}
	cfg := bench.DefaultFig10Config()
	if quick {
		cfg = bench.QuickFig10Config()
	}
	results, err := bench.Fig10(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if cdf {
		for _, r := range results {
			fmt.Printf("\n## config %s (download-seconds cumulative-fraction)\n", r.Config)
			times := append([]time.Duration(nil), r.Stats.Times...)
			sortDurations(times)
			for _, pt := range bench.CDF(times) {
				fmt.Printf("%.2f %.4f\n", pt[0], pt[1])
			}
		}
		return
	}
	fmt.Printf("%-14s %-10s %-10s %-10s %-10s\n", "config", "mean", "p50", "p90", "pages")
	for _, r := range results {
		fmt.Printf("%-14s %-10s %-10s %-10s %d\n", r.Config,
			fmtDur(r.Stats.Mean()), fmtDur(r.Stats.Percentile(50)),
			fmtDur(r.Stats.Percentile(90)), len(r.Stats.Times))
	}
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.0fms", float64(d)/1e6)
	}
}
