package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dissent/internal/cli"
	"dissent/internal/group"
)

// TestKeygenProducesLoadableGroup runs the generator end to end and
// loads everything back through the same cli paths the daemons use.
func TestKeygenProducesLoadableGroup(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-servers", "2", "-clients", "3", "-out", dir,
		"-name", "smoke", "-msggroup", "modp-512-test", "-epoch", "8",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "group ID") {
		t.Errorf("missing group ID in output: %q", out.String())
	}

	def, err := cli.LoadGroup(filepath.Join(dir, "group.json"))
	if err != nil {
		t.Fatalf("generated group does not load: %v", err)
	}
	if len(def.Servers) != 2 || len(def.Clients) != 3 {
		t.Fatalf("group has %d servers / %d clients", len(def.Servers), len(def.Clients))
	}
	if def.Policy.BeaconEpochRounds != 8 {
		t.Errorf("BeaconEpochRounds = %d, want 8", def.Policy.BeaconEpochRounds)
	}

	roster, err := cli.LoadRoster(filepath.Join(dir, "roster.json"))
	if err != nil {
		t.Fatalf("generated roster does not load: %v", err)
	}
	if len(roster) != 5 {
		t.Fatalf("roster has %d entries, want 5", len(roster))
	}

	// Every key file loads and matches a group member.
	for i := 0; i < 2; i++ {
		kp, msgKP, err := cli.LoadKeyFile(filepath.Join(dir, "server-"+string(rune('0'+i))+".key"), def.MsgGroup())
		if err != nil {
			t.Fatalf("server key %d: %v", i, err)
		}
		if msgKP == nil {
			t.Fatalf("server key %d lacks a message-shuffle key", i)
		}
		// Key files are written in definition order so that server-i.key
		// pairs with the i-th roster address.
		if got := def.ServerIndex(group.IDFromKey(def.Group(), kp.Public)); got != i {
			t.Fatalf("server key %d has definition index %d", i, got)
		}
	}
	for i := 0; i < 3; i++ {
		kp, _, err := cli.LoadKeyFile(filepath.Join(dir, "client-"+string(rune('0'+i))+".key"), nil)
		if err != nil {
			t.Fatalf("client key %d: %v", i, err)
		}
		if got := def.ClientIndex(group.IDFromKey(def.Group(), kp.Public)); got != i {
			t.Fatalf("client key %d has definition index %d", i, got)
		}
	}
}

func TestKeygenRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-servers", "0", "-out", dir},              // no servers
		{"-clients", "0", "-out", dir},              // no clients
		{"-msggroup", "no-such-group", "-out", dir}, // unknown group
		{"-epoch", "-1", "-out", dir},               // invalid policy
		{"-nonsense"},                               // unknown flag
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("keygen %v succeeded, want error", args)
		}
	}
}
