package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"dissent/dissentcfg"
)

// TestKeygenProducesLoadableGroup runs the generator end to end and
// loads everything back through the same dissentcfg paths the daemons
// use.
func TestKeygenProducesLoadableGroup(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-servers", "2", "-clients", "3", "-out", dir,
		"-name", "smoke", "-msggroup", "modp-512-test", "-epoch", "8",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "group ID") {
		t.Errorf("missing group ID in output: %q", out.String())
	}

	grp, err := dissentcfg.LoadGroup(filepath.Join(dir, "group.json"))
	if err != nil {
		t.Fatalf("generated group does not load: %v", err)
	}
	if len(grp.Servers) != 2 || len(grp.Clients) != 3 {
		t.Fatalf("group has %d servers / %d clients", len(grp.Servers), len(grp.Clients))
	}
	if grp.Policy.BeaconEpochRounds != 8 {
		t.Errorf("BeaconEpochRounds = %d, want 8", grp.Policy.BeaconEpochRounds)
	}

	roster, err := dissentcfg.LoadRoster(filepath.Join(dir, "roster.json"))
	if err != nil {
		t.Fatalf("generated roster does not load: %v", err)
	}
	if len(roster) != 5 {
		t.Fatalf("roster has %d entries, want 5", len(roster))
	}

	// Every key file loads and matches its member at definition order,
	// so server-i.key pairs with the i-th roster address.
	keyGrp := grp.Group()
	for i := 0; i < 2; i++ {
		keys, err := dissentcfg.LoadKeys(filepath.Join(dir, "server-"+string(rune('0'+i))+".key"), grp)
		if err != nil {
			t.Fatalf("server key %d: %v", i, err)
		}
		if keys.MsgShuffle == nil {
			t.Fatalf("server key %d lacks a message-shuffle key", i)
		}
		if !keyGrp.Equal(keys.Identity.Public, grp.Servers[i].PubKey) {
			t.Fatalf("server key %d does not match definition index %d", i, i)
		}
	}
	for i := 0; i < 3; i++ {
		keys, err := dissentcfg.LoadKeys(filepath.Join(dir, "client-"+string(rune('0'+i))+".key"), grp)
		if err != nil {
			t.Fatalf("client key %d: %v", i, err)
		}
		if !keyGrp.Equal(keys.Identity.Public, grp.Clients[i].PubKey) {
			t.Fatalf("client key %d does not match definition index %d", i, i)
		}
	}
}

func TestKeygenRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-servers", "0", "-out", dir},              // no servers
		{"-clients", "0", "-out", dir},              // no clients
		{"-msggroup", "no-such-group", "-out", dir}, // unknown group
		{"-epoch", "-1", "-out", dir},               // invalid policy
		{"-nonsense"},                               // unknown flag
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("keygen %v succeeded, want error", args)
		}
	}
}
