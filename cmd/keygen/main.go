// Command keygen generates Dissent identities and group definition
// files (§3.2): one keypair file per participant plus a group.json
// whose hash is the group's self-certifying identifier, and a roster
// template for the TCP transport. It is a thin wrapper around
// dissentcfg.Generate.
//
// Usage:
//
//	keygen -servers 3 -clients 8 -out ./groupdir [-name mygroup]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"dissent"
	"dissent/dissentcfg"
)

func main() {
	log.SetPrefix("keygen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
}

// run generates the group material, writing progress to w.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	servers := fs.Int("servers", 3, "number of servers")
	clients := fs.Int("clients", 8, "number of clients")
	out := fs.String("out", ".", "output directory")
	name := fs.String("name", "dissent-group", "group name")
	msgGroup := fs.String("msggroup", "modp-2048", "message-shuffle group (modp-2048 or modp-512-test)")
	basePort := fs.Int("baseport", 7000, "first port for the roster template")
	epochRounds := fs.Int("epoch", dissent.DefaultPolicy().BeaconEpochRounds,
		"beacon epoch length in rounds (0 disables the randomness beacon)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *epochRounds < 0 {
		return errors.New("-epoch must be non-negative")
	}

	grp, err := dissentcfg.Generate(*out, dissentcfg.GenerateConfig{
		Name:              *name,
		Servers:           *servers,
		Clients:           *clients,
		MessageGroup:      *msgGroup,
		BeaconEpochRounds: *epochRounds,
		BasePort:          *basePort,
	})
	if err != nil {
		return err
	}

	gid := grp.GroupID()
	fmt.Fprintf(w, "wrote %s (group ID %x)\n", filepath.Join(*out, "group.json"), gid[:])
	fmt.Fprintf(w, "wrote roster.json template and %d server / %d client key files to %s\n",
		*servers, *clients, *out)
	return nil
}
