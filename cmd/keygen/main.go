// Command keygen generates Dissent identities and group definition
// files (§3.2): one keypair file per participant plus a group.json
// whose hash is the group's self-certifying identifier, and a roster
// template for the TCP transport.
//
// Usage:
//
//	keygen -servers 3 -clients 8 -out ./groupdir [-name mygroup]
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dissent/internal/cli"
	"dissent/internal/crypto"
	"dissent/internal/group"
	"dissent/internal/transport"
)

func main() {
	servers := flag.Int("servers", 3, "number of servers")
	clients := flag.Int("clients", 8, "number of clients")
	out := flag.String("out", ".", "output directory")
	name := flag.String("name", "dissent-group", "group name")
	msgGroup := flag.String("msggroup", "modp-2048", "message-shuffle group (modp-2048 or modp-512-test)")
	basePort := flag.Int("baseport", 7000, "first port for the roster template")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o700); err != nil {
		log.Fatal(err)
	}
	keyGrp := crypto.P256()
	mg, err := crypto.GroupByName(*msgGroup)
	if err != nil {
		log.Fatal(err)
	}

	serverKeys := make([]crypto.Element, *servers)
	serverMsgKeys := make([]crypto.Element, *servers)
	for i := 0; i < *servers; i++ {
		kp, err := crypto.GenerateKeyPair(keyGrp, nil)
		if err != nil {
			log.Fatal(err)
		}
		mkp, err := crypto.GenerateKeyPair(mg, nil)
		if err != nil {
			log.Fatal(err)
		}
		serverKeys[i] = kp.Public
		serverMsgKeys[i] = mkp.Public
		err = cli.WriteKeyFile(filepath.Join(*out, fmt.Sprintf("server-%d.key", i)), cli.KeyFile{
			Role:       "server",
			Private:    kp.Private.Text(16),
			Public:     hex.EncodeToString(keyGrp.Encode(kp.Public)),
			MsgPrivate: mkp.Private.Text(16),
			MsgPublic:  hex.EncodeToString(mg.Encode(mkp.Public)),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	clientKeys := make([]crypto.Element, *clients)
	for i := 0; i < *clients; i++ {
		kp, err := crypto.GenerateKeyPair(keyGrp, nil)
		if err != nil {
			log.Fatal(err)
		}
		clientKeys[i] = kp.Public
		err = cli.WriteKeyFile(filepath.Join(*out, fmt.Sprintf("client-%d.key", i)), cli.KeyFile{
			Role:    "client",
			Private: kp.Private.Text(16),
			Public:  hex.EncodeToString(keyGrp.Encode(kp.Public)),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	policy := group.DefaultPolicy()
	policy.MessageGroup = *msgGroup
	def, err := group.NewDefinition(*name, serverKeys, serverMsgKeys, clientKeys, policy)
	if err != nil {
		log.Fatal(err)
	}
	data, err := def.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(*out, "group.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}

	// Roster template: localhost addresses in member order.
	roster := transport.Roster{}
	port := *basePort
	for _, m := range def.Servers {
		roster[m.ID] = fmt.Sprintf("127.0.0.1:%d", port)
		port++
	}
	for _, m := range def.Clients {
		roster[m.ID] = fmt.Sprintf("127.0.0.1:%d", port)
		port++
	}
	if err := cli.WriteRoster(filepath.Join(*out, "roster.json"), roster); err != nil {
		log.Fatal(err)
	}

	gid := def.GroupID()
	fmt.Printf("wrote %s (group ID %x)\n", path, gid[:])
	fmt.Printf("wrote roster.json template and %d server / %d client key files to %s\n",
		*servers, *clients, *out)
}
