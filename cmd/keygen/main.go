// Command keygen generates Dissent identities and group definition
// files (§3.2): one keypair file per participant plus a group.json
// whose hash is the group's self-certifying identifier, and a roster
// template for the TCP transport.
//
// Usage:
//
//	keygen -servers 3 -clients 8 -out ./groupdir [-name mygroup]
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"dissent/internal/cli"
	"dissent/internal/crypto"
	"dissent/internal/group"
	"dissent/internal/transport"
)

func main() {
	log.SetPrefix("keygen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
}

// run generates the group material, writing progress to w.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	servers := fs.Int("servers", 3, "number of servers")
	clients := fs.Int("clients", 8, "number of clients")
	out := fs.String("out", ".", "output directory")
	name := fs.String("name", "dissent-group", "group name")
	msgGroup := fs.String("msggroup", "modp-2048", "message-shuffle group (modp-2048 or modp-512-test)")
	basePort := fs.Int("baseport", 7000, "first port for the roster template")
	epochRounds := fs.Int("epoch", group.DefaultPolicy().BeaconEpochRounds,
		"beacon epoch length in rounds (0 disables the randomness beacon)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o700); err != nil {
		return err
	}
	keyGrp := crypto.P256()
	mg, err := crypto.GroupByName(*msgGroup)
	if err != nil {
		return err
	}

	serverKeys := make([]crypto.Element, *servers)
	serverMsgKeys := make([]crypto.Element, *servers)
	serverKPs := make(map[group.NodeID]*crypto.KeyPair, *servers)
	serverMsgKPs := make(map[group.NodeID]*crypto.KeyPair, *servers)
	for i := 0; i < *servers; i++ {
		kp, err := crypto.GenerateKeyPair(keyGrp, nil)
		if err != nil {
			return err
		}
		mkp, err := crypto.GenerateKeyPair(mg, nil)
		if err != nil {
			return err
		}
		serverKeys[i] = kp.Public
		serverMsgKeys[i] = mkp.Public
		id := group.IDFromKey(keyGrp, kp.Public)
		serverKPs[id] = kp
		serverMsgKPs[id] = mkp
	}
	clientKeys := make([]crypto.Element, *clients)
	clientKPs := make(map[group.NodeID]*crypto.KeyPair, *clients)
	for i := 0; i < *clients; i++ {
		kp, err := crypto.GenerateKeyPair(keyGrp, nil)
		if err != nil {
			return err
		}
		clientKeys[i] = kp.Public
		clientKPs[group.IDFromKey(keyGrp, kp.Public)] = kp
	}

	policy := group.DefaultPolicy()
	policy.MessageGroup = *msgGroup
	policy.BeaconEpochRounds = *epochRounds
	def, err := group.NewDefinition(*name, serverKeys, serverMsgKeys, clientKeys, policy)
	if err != nil {
		return err
	}

	// Write key files in *definition* order (NewDefinition sorts members
	// by ID), so server-i.key is def.Servers[i] and lines up with the
	// i-th roster address below.
	for i, m := range def.Servers {
		kp, mkp := serverKPs[m.ID], serverMsgKPs[m.ID]
		err = cli.WriteKeyFile(filepath.Join(*out, fmt.Sprintf("server-%d.key", i)), cli.KeyFile{
			Role:       "server",
			Private:    kp.Private.Text(16),
			Public:     hex.EncodeToString(keyGrp.Encode(kp.Public)),
			MsgPrivate: mkp.Private.Text(16),
			MsgPublic:  hex.EncodeToString(mg.Encode(mkp.Public)),
		})
		if err != nil {
			return err
		}
	}
	for i, m := range def.Clients {
		kp := clientKPs[m.ID]
		err = cli.WriteKeyFile(filepath.Join(*out, fmt.Sprintf("client-%d.key", i)), cli.KeyFile{
			Role:    "client",
			Private: kp.Private.Text(16),
			Public:  hex.EncodeToString(keyGrp.Encode(kp.Public)),
		})
		if err != nil {
			return err
		}
	}
	data, err := def.MarshalJSON()
	if err != nil {
		return err
	}
	path := filepath.Join(*out, "group.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}

	// Roster template: localhost addresses in member order.
	roster := transport.Roster{}
	port := *basePort
	for _, m := range def.Servers {
		roster[m.ID] = fmt.Sprintf("127.0.0.1:%d", port)
		port++
	}
	for _, m := range def.Clients {
		roster[m.ID] = fmt.Sprintf("127.0.0.1:%d", port)
		port++
	}
	if err := cli.WriteRoster(filepath.Join(*out, "roster.json"), roster); err != nil {
		return err
	}

	gid := def.GroupID()
	fmt.Fprintf(w, "wrote %s (group ID %x)\n", path, gid[:])
	fmt.Fprintf(w, "wrote roster.json template and %d server / %d client key files to %s\n",
		*servers, *clients, *out)
	return nil
}
