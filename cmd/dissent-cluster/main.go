// Command dissent-cluster runs cluster-scale scenarios: whole Dissent
// deployments — servers and clients over an in-process SimNet or as
// separate OS processes on loopback TCP — driven through declarative
// workload + fault-schedule scenarios, each emitting one
// BENCH_<scenario>.json benchmark report.
//
// Usage:
//
//	dissent-cluster -list                      # available scenarios
//	dissent-cluster -scenario microblog        # run one scenario
//	dissent-cluster -scenario all -quick       # smoke every scenario
//	dissent-cluster -scenario microblog -mode tcp
//
// In tcp mode the command re-executes itself as the server worker
// processes (steered by the DISSENT_CLUSTER_WORKER environment
// variable), so no separate worker binary is needed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dissent/internal/cluster"
)

func main() {
	// Worker dispatch first: when the orchestrator spawned this process
	// as a server, the env var points at its config and no flags apply.
	if cfg := os.Getenv(cluster.WorkerEnv); cfg != "" {
		if err := cluster.RunWorkerFile(cfg); err != nil {
			log.Fatalf("cluster worker: %v", err)
		}
		return
	}

	scenario := flag.String("scenario", "", "scenario name, or 'all'")
	mode := flag.String("mode", "", "override deployment mode: sim|tcp")
	servers := flag.Int("servers", 0, "override server count")
	clients := flag.Int("clients", 0, "override client count")
	run := flag.Duration("run", 0, "override the measured window")
	quick := flag.Bool("quick", false, "shrink the scenario for a smoke run")
	out := flag.String("out", ".", "directory for BENCH_<scenario>.json reports")
	list := flag.Bool("list", false, "list scenarios and exit")
	verbose := flag.Bool("v", false, "narrate run phases")
	flag.Parse()
	log.SetFlags(0)

	if *list {
		fmt.Printf("%-16s %-5s %s\n", "scenario", "mode", "description")
		for _, sc := range cluster.Scenarios() {
			fmt.Printf("%-16s %-5s %s\n", sc.Name, sc.Mode, sc.Description)
		}
		return
	}
	if *scenario == "" {
		fmt.Fprintln(os.Stderr, "need -scenario <name>|all (see -list)")
		os.Exit(2)
	}

	var scenarios []cluster.Scenario
	if *scenario == "all" {
		scenarios = cluster.Scenarios()
	} else {
		sc, err := cluster.Lookup(*scenario)
		if err != nil {
			log.Fatal(err)
		}
		scenarios = []cluster.Scenario{sc}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	failed := 0
	for _, sc := range scenarios {
		if *servers > 0 {
			sc.Topology.Servers = *servers
		}
		if *clients > 0 {
			sc.Topology.Clients = *clients
		}
		if *run > 0 {
			sc.Run = *run
		}
		// Provision (and, in tcp mode, worker logs) under the out dir —
		// not CWD, not a temp dir that vanishes with the evidence — so a
		// failed run leaves its worker-N.log files inspectable.
		workDir := filepath.Join(*out, "cluster-work", sc.Name)
		if err := os.MkdirAll(workDir, 0o755); err != nil {
			log.Fatal(err)
		}
		opts := cluster.Options{Mode: cluster.Mode(*mode), Quick: *quick, Dir: workDir}
		if *verbose {
			opts.Logf = func(format string, args ...any) {
				log.Printf("[%s] "+format, append([]any{sc.Name}, args...)...)
			}
		}
		fmt.Printf("=== scenario %s (%s) ===\n", sc.Name, sc.Description)
		start := time.Now()
		res, err := cluster.Run(ctx, sc, opts)
		if err != nil {
			log.Printf("scenario %s FAILED: %v", sc.Name, err)
			failed++
			continue
		}
		path, err := res.WriteReport(*out)
		if err != nil {
			log.Printf("scenario %s report: %v", sc.Name, err)
			failed++
			continue
		}
		fmt.Printf("%-28s %v\n", "wall time", time.Since(start).Round(time.Millisecond))
		for _, row := range res.Report().Results {
			fmt.Printf("%-28s %.2f %s\n", row.Name, row.Value, row.Unit)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
