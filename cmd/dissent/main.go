// Command dissent runs one Dissent client over TCP, exposing the §4.1
// application interfaces: an HTTP API for posting raw anonymous
// messages and (optionally) a SOCKS v5 entry proxy tunneling TCP flows
// through the group.
//
// Usage:
//
//	dissent -group group.json -key client-0.key -roster roster.json \
//	        -listen :7101 -http :8080 [-socks :1080] [-exit]
//
// With -exit the client additionally acts as the group's (single,
// non-anonymous) SOCKS exit node, forwarding tunneled flows to the
// public network (§4.1).
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"dissent/internal/cli"
	"dissent/internal/core"
	"dissent/internal/socks"
	"dissent/internal/transport"
)

func main() {
	groupPath := flag.String("group", "group.json", "group definition file")
	keyPath := flag.String("key", "", "client key file (from keygen)")
	rosterPath := flag.String("roster", "roster.json", "node address roster")
	listen := flag.String("listen", ":7100", "protocol listen address")
	httpAddr := flag.String("http", "", "HTTP API listen address (empty = disabled)")
	socksAddr := flag.String("socks", "", "SOCKS5 proxy listen address (empty = disabled)")
	exitNode := flag.Bool("exit", false, "act as the group's SOCKS exit node")
	post := flag.String("post", "", "post one message after the schedule is ready, then keep running")
	flag.Parse()
	log.SetPrefix("dissent: ")

	def, err := cli.LoadGroup(*groupPath)
	if err != nil {
		log.Fatal(err)
	}
	roster, err := cli.LoadRoster(*rosterPath)
	if err != nil {
		log.Fatal(err)
	}
	kp, _, err := cli.LoadKeyFile(*keyPath, nil)
	if err != nil {
		log.Fatal(err)
	}

	client, err := core.NewClient(def, kp, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	var node *transport.Node
	var sendMu sync.Mutex
	send := func(data []byte) {
		// Send is safe to call concurrently with engine activity only
		// under the node's engine lock.
		sendMu.Lock()
		defer sendMu.Unlock()
		node.WithEngine(func(core.Engine) (*core.Output, error) {
			client.Send(data)
			return nil, nil
		})
	}

	api := socks.NewAPI(send, 0)
	entry := socks.NewEntry(send)
	var exit *socks.Exit
	if *exitNode {
		exit = socks.NewExit(send)
	}

	// Per-slot reassembly buffers for SOCKS frames.
	slotBufs := map[int][]byte{}

	node, err = transport.Listen(client.ID(), *listen, roster, client)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	node.OnDelivery = func(d core.Delivery) {
		api.Record(d.Round, d.Slot, d.Data)
		buf := append(slotBufs[d.Slot], d.Data...)
		frames, rest, err := socks.DecodeFrames(buf)
		if err != nil {
			slotBufs[d.Slot] = nil
			return
		}
		slotBufs[d.Slot] = rest
		if len(frames) == 0 {
			return
		}
		entry.Deliver(frames)
		if exit != nil {
			exit.Deliver(frames)
		}
	}
	posted := false
	node.OnEvent = func(e core.Event) {
		log.Printf("round %d: %s %s", e.Round, e.Kind, e.Detail)
		if e.Kind == core.EventScheduleReady && *post != "" && !posted {
			posted = true
			client.Send([]byte(*post)) // called under the engine lock
		}
	}
	node.OnError = func(err error) { log.Printf("error: %v", err) }

	if *httpAddr != "" {
		go func() {
			log.Printf("HTTP API on %s (POST /send, GET /messages)", *httpAddr)
			log.Fatal(http.ListenAndServe(*httpAddr, api.Handler()))
		}()
	}
	if *socksAddr != "" {
		ln, err := net.Listen("tcp", *socksAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("SOCKS5 proxy on %s", *socksAddr)
		go entry.Serve(ln)
	}

	gid := def.GroupID()
	log.Printf("client %s (index %d) in group %x, upstream server %d",
		client.ID(), client.Index(), gid[:8], def.UpstreamServer(client.Index()))
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
}
