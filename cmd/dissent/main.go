// Command dissent runs one Dissent client over TCP, exposing the §4.1
// application interfaces: an HTTP API for posting raw anonymous
// messages and (optionally) a SOCKS v5 entry proxy tunneling TCP flows
// through the group.
//
// Usage:
//
//	dissent -group group.json -key client-0.key -roster roster.json \
//	        -listen :7101 -http :8080 [-socks :1080] [-exit]
//
// With -exit the client additionally acts as the group's (single,
// non-anonymous) SOCKS exit node, forwarding tunneled flows to the
// public network (§4.1).
//
// The beacon subcommand fetches a server's randomness-beacon chain,
// verifies every share and chain link from genesis with the group's
// public keys, and prints the requested entry:
//
//	dissent beacon -url http://server0:7080 -group group.json [-round N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"dissent/internal/beacon"
	"dissent/internal/cli"
	"dissent/internal/core"
	"dissent/internal/socks"
	"dissent/internal/transport"
)

func main() {
	log.SetPrefix("dissent: ")
	var err error
	if len(os.Args) > 1 && os.Args[1] == "beacon" {
		err = beaconCmd(os.Args[2:], os.Stdout)
	} else {
		err = run(os.Args[1:])
	}
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		log.Fatal(err)
	}
}

// beaconCmd implements "dissent beacon": sync a beacon chain over
// HTTP, verify it end to end, and print one entry.
func beaconCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dissent beacon", flag.ContinueOnError)
	url := fs.String("url", "", "beacon endpoint base URL, e.g. http://server0:7080")
	groupPath := fs.String("group", "group.json", "group definition file (verification keys)")
	round := fs.Int64("round", -1, "print a specific round (default: latest)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return errors.New("dissent beacon: -url is required")
	}
	def, err := cli.LoadGroup(*groupPath)
	if err != nil {
		return err
	}
	if def.Policy.BeaconEpochRounds == 0 {
		return errors.New("dissent beacon: the group policy disables the beacon")
	}

	chain := beacon.NewChain(def.Group(), def.ServerPubKeys(), beacon.GenesisValue(def.GroupID()))
	src := &beacon.HTTPSource{URL: *url}
	// Sync verifies every fetched entry (share signatures and chain
	// links) as it appends; a completed sync IS a verified chain.
	added, err := chain.Sync(src)
	if err != nil {
		return err
	}
	if chain.Len() == 0 {
		return errors.New("dissent beacon: the server has no beacon entries yet")
	}

	entry := chain.Latest()
	if *round >= 0 {
		if entry = chain.Get(uint64(*round)); entry == nil {
			return fmt.Errorf("dissent beacon: no entry for round %d (failed round?)", *round)
		}
	}
	fmt.Fprintf(w, "chain verified: %d entries (%d fetched), head round %d\n",
		chain.Len(), added, chain.Latest().Round)
	fmt.Fprintf(w, "round  %d\n", entry.Round)
	fmt.Fprintf(w, "prev   %x\n", entry.Prev)
	fmt.Fprintf(w, "value  %x\n", entry.Value)
	fmt.Fprintf(w, "shares %d (all signatures valid)\n", len(entry.Shares))
	return nil
}

// run parses flags and serves the client until a signal; it returns an
// error (instead of exiting) for anything that fails before the
// serving loop, so tests can exercise argument handling.
func run(args []string) error {
	fs := flag.NewFlagSet("dissent", flag.ContinueOnError)
	groupPath := fs.String("group", "group.json", "group definition file")
	keyPath := fs.String("key", "", "client key file (from keygen)")
	rosterPath := fs.String("roster", "roster.json", "node address roster")
	listen := fs.String("listen", ":7100", "protocol listen address")
	httpAddr := fs.String("http", "", "HTTP API listen address (empty = disabled)")
	socksAddr := fs.String("socks", "", "SOCKS5 proxy listen address (empty = disabled)")
	exitNode := fs.Bool("exit", false, "act as the group's SOCKS exit node")
	post := fs.String("post", "", "post one message after the schedule is ready, then keep running")
	if err := fs.Parse(args); err != nil {
		return err
	}

	def, err := cli.LoadGroup(*groupPath)
	if err != nil {
		return err
	}
	roster, err := cli.LoadRoster(*rosterPath)
	if err != nil {
		return err
	}
	kp, _, err := cli.LoadKeyFile(*keyPath, nil)
	if err != nil {
		return err
	}

	client, err := core.NewClient(def, kp, core.Options{})
	if err != nil {
		return err
	}

	var node *transport.Node
	var sendMu sync.Mutex
	send := func(data []byte) {
		// Send is safe to call concurrently with engine activity only
		// under the node's engine lock.
		sendMu.Lock()
		defer sendMu.Unlock()
		node.WithEngine(func(core.Engine) (*core.Output, error) {
			client.Send(data)
			return nil, nil
		})
	}

	api := socks.NewAPI(send, 0)
	entry := socks.NewEntry(send)
	var exit *socks.Exit
	if *exitNode {
		exit = socks.NewExit(send)
	}

	// Per-slot reassembly buffers for SOCKS frames.
	slotBufs := map[int][]byte{}

	node, err = transport.Listen(client.ID(), *listen, roster, client)
	if err != nil {
		return err
	}
	defer node.Close()
	node.OnDelivery = func(d core.Delivery) {
		api.Record(d.Round, d.Slot, d.Data)
		buf := append(slotBufs[d.Slot], d.Data...)
		frames, rest, err := socks.DecodeFrames(buf)
		if err != nil {
			slotBufs[d.Slot] = nil
			return
		}
		slotBufs[d.Slot] = rest
		if len(frames) == 0 {
			return
		}
		entry.Deliver(frames)
		if exit != nil {
			exit.Deliver(frames)
		}
	}
	posted := false
	node.OnEvent = func(e core.Event) {
		log.Printf("round %d: %s %s", e.Round, e.Kind, e.Detail)
		if e.Kind == core.EventScheduleReady && *post != "" && !posted {
			posted = true
			client.Send([]byte(*post)) // called under the engine lock
		}
	}
	node.OnError = func(err error) { log.Printf("error: %v", err) }

	if *httpAddr != "" {
		go func() {
			log.Printf("HTTP API on %s (POST /send, GET /messages)", *httpAddr)
			log.Fatal(http.ListenAndServe(*httpAddr, api.Handler()))
		}()
	}
	if *socksAddr != "" {
		ln, err := net.Listen("tcp", *socksAddr)
		if err != nil {
			return err
		}
		log.Printf("SOCKS5 proxy on %s", *socksAddr)
		go entry.Serve(ln)
	}

	gid := def.GroupID()
	log.Printf("client %s (index %d) in group %x, upstream server %d",
		client.ID(), client.Index(), gid[:8], def.UpstreamServer(client.Index()))
	if err := node.Start(); err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	return nil
}
