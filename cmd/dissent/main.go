// Command dissent runs one Dissent client over TCP, built on the
// public dissent SDK and exposing the §4.1 application interfaces: an
// HTTP API for posting raw anonymous messages and (optionally) a SOCKS
// v5 entry proxy tunneling TCP flows through the group.
//
// Usage:
//
//	dissent -group group.json -key client-0.key -roster roster.json \
//	        -listen :7101 -http :8080 [-socks :1080] [-exit]
//
// With -exit the client additionally acts as the group's (single,
// non-anonymous) SOCKS exit node, forwarding tunneled flows to the
// public network (§4.1).
//
// The beacon subcommand fetches a server's randomness-beacon chain,
// verifies every share and chain link with the group's public keys —
// anchored, when the server publishes its schedule certificate, at the
// session-bound genesis so an archived previous-session chain is
// rejected — and prints the requested entry:
//
//	dissent beacon -url http://server0:7080 -group group.json [-round N]
//
// The trace subcommand fetches a daemon's recent per-round span
// records from its debug endpoint (dissentd -metrics address) and
// prints the slowest rounds with their phase breakdown — submission
// window, pad expansion, combine, certification, blame:
//
//	dissent trace -url http://server0:7090 [-n 10] [-all]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dissent"
	"dissent/dissentcfg"
	"dissent/internal/socks"
)

func main() {
	log.SetPrefix("dissent: ")
	var err error
	switch {
	case len(os.Args) > 1 && os.Args[1] == "beacon":
		err = beaconCmd(os.Args[2:], os.Stdout)
	case len(os.Args) > 1 && os.Args[1] == "trace":
		err = traceCmd(os.Args[2:], os.Stdout)
	default:
		err = run(os.Args[1:])
	}
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		log.Fatal(err)
	}
}

// beaconCmd implements "dissent beacon": sync a beacon chain over
// HTTP, verify it end to end, and print one entry.
func beaconCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dissent beacon", flag.ContinueOnError)
	url := fs.String("url", "", "beacon endpoint base URL, e.g. http://server0:7080")
	groupPath := fs.String("group", "group.json", "group definition file (verification keys)")
	round := fs.Int64("round", -1, "print a specific round (default: latest)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return errors.New("dissent beacon: -url is required")
	}
	grp, err := dissentcfg.LoadGroup(*groupPath)
	if err != nil {
		return err
	}

	res, err := dissent.SyncBeacon(*url, grp)
	if err != nil {
		return err
	}
	chain := res.Chain
	if chain.Len() == 0 {
		return errors.New("dissent beacon: the server has no beacon entries yet")
	}

	entry := chain.Latest()
	if *round >= 0 {
		if entry = chain.Get(uint64(*round)); entry == nil {
			return fmt.Errorf("dissent beacon: no entry for round %d (failed round?)", *round)
		}
	}
	fmt.Fprintf(w, "chain verified: %d entries (%d fetched), head round %d\n",
		chain.Len(), res.Added, chain.Latest().Round)
	if res.SessionBound {
		fmt.Fprintf(w, "genesis bound to the live session's schedule certificate\n")
	} else {
		fmt.Fprintf(w, "warning: no schedule certificate served; verified against the "+
			"pre-session genesis (an archived chain would verify identically)\n")
	}
	fmt.Fprintf(w, "round  %d\n", entry.Round)
	fmt.Fprintf(w, "prev   %x\n", entry.Prev)
	fmt.Fprintf(w, "value  %x\n", entry.Value)
	fmt.Fprintf(w, "shares %d (all signatures valid)\n", len(entry.Shares))
	return nil
}

// run parses flags and serves the client until SIGINT/SIGTERM; it
// returns an error (instead of exiting) for anything that fails before
// the serving loop, so tests can exercise argument handling.
func run(args []string) error {
	fs := flag.NewFlagSet("dissent", flag.ContinueOnError)
	groupPath := fs.String("group", "group.json", "group definition file")
	keyPath := fs.String("key", "", "client key file (from keygen)")
	rosterPath := fs.String("roster", "roster.json", "node address roster")
	listen := fs.String("listen", ":7100", "protocol listen address")
	httpAddr := fs.String("http", "", "HTTP API listen address (empty = disabled)")
	socksAddr := fs.String("socks", "", "SOCKS5 proxy listen address (empty = disabled)")
	exitNode := fs.Bool("exit", false, "act as the group's SOCKS exit node")
	post := fs.String("post", "", "post one message once the session runs, then keep running")
	if err := fs.Parse(args); err != nil {
		return err
	}

	grp, err := dissentcfg.LoadGroup(*groupPath)
	if err != nil {
		return err
	}
	roster, err := dissentcfg.LoadRoster(*rosterPath)
	if err != nil {
		return err
	}
	keys, err := dissentcfg.LoadKeys(*keyPath, grp)
	if err != nil {
		return err
	}

	node, err := dissent.NewClient(grp, keys,
		dissent.WithListenAddr(*listen),
		dissent.WithRoster(roster),
		dissent.WithErrorHandler(func(err error) { log.Printf("error: %v", err) }),
	)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	send := func(data []byte) {
		if err := node.Send(ctx, data); err != nil {
			log.Printf("send: %v", err)
		}
	}
	api := socks.NewAPI(send, 0)
	entry := socks.NewEntry(send)
	var exit *socks.Exit
	if *exitNode {
		exit = socks.NewExit(send)
	}

	// Consume the anonymous channel: record every message for the HTTP
	// API and reassemble per-slot SOCKS frames.
	go func() {
		slotBufs := map[int][]byte{}
		for d := range node.Messages() {
			api.Record(d.Round, d.Slot, d.Data)
			buf := append(slotBufs[d.Slot], d.Data...)
			frames, rest, err := socks.DecodeFrames(buf)
			if err != nil {
				slotBufs[d.Slot] = nil
				continue
			}
			slotBufs[d.Slot] = rest
			if len(frames) == 0 {
				continue
			}
			entry.Deliver(frames)
			if exit != nil {
				exit.Deliver(frames)
			}
		}
	}()
	events := node.Subscribe()
	go func() {
		for e := range events {
			log.Printf("round %d: %s %s", e.Round, e.Kind, e.Detail)
		}
	}()
	if *post != "" {
		// Queued now, transmitted in our pseudonym slot once the
		// schedule is established.
		send([]byte(*post))
	}

	if *httpAddr != "" {
		go func() {
			log.Printf("HTTP API on %s (POST /send, GET /messages)", *httpAddr)
			log.Fatal(http.ListenAndServe(*httpAddr, api.Handler()))
		}()
	}
	if *socksAddr != "" {
		ln, err := net.Listen("tcp", *socksAddr)
		if err != nil {
			return err
		}
		log.Printf("SOCKS5 proxy on %s", *socksAddr)
		go entry.Serve(ln)
	}

	gid := grp.GroupID()
	log.Printf("client %s (index %d) in group %x, upstream server %d",
		node.ID(), node.Index(), gid[:8], grp.UpstreamServer(node.Index()))
	err = node.Run(ctx)
	if err == nil {
		log.Print("shutting down")
	}
	return err
}
