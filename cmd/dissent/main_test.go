package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRunRejectsBadInputs checks that every pre-serve failure path
// returns an error instead of starting the client.
func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	badRoster := filepath.Join(dir, "bad-roster.json")
	if err := os.WriteFile(badRoster, []byte(`{"zz": "not-hex-id"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"missing group file", []string{"-group", missing}},
		{"missing key file", []string{"-group", missing, "-key", missing}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}

func TestBeaconCmdRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	cases := []struct {
		name string
		args []string
	}{
		{"missing url", []string{}},
		{"unknown flag", []string{"-url", "http://x", "-zzz"}},
		{"missing group file", []string{"-url", "http://127.0.0.1:1", "-group", missing}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := beaconCmd(tc.args, &out); err == nil {
				t.Errorf("beaconCmd(%v) succeeded, want error", tc.args)
			}
		})
	}
}
