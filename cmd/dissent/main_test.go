package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRejectsBadInputs checks that every pre-serve failure path
// returns an error instead of starting the client.
func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	badRoster := filepath.Join(dir, "bad-roster.json")
	if err := os.WriteFile(badRoster, []byte(`{"zz": "not-hex-id"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"missing group file", []string{"-group", missing}},
		{"missing key file", []string{"-group", missing, "-key", missing}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}

func TestBeaconCmdRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	cases := []struct {
		name string
		args []string
	}{
		{"missing url", []string{}},
		{"unknown flag", []string{"-url", "http://x", "-zzz"}},
		{"missing group file", []string{"-url", "http://127.0.0.1:1", "-group", missing}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := beaconCmd(tc.args, &out); err == nil {
				t.Errorf("beaconCmd(%v) succeeded, want error", tc.args)
			}
		})
	}
}

// TestTraceCmd serves a canned /debug/rounds payload and checks the
// rendered table: slowest-first ordering, -n truncation, and the phase
// columns and flags.
func TestTraceCmd(t *testing.T) {
	payload := `[{"session":"aabbccdd00112233","group":"g1","role":"server","traces":[
		{"round":1,"start":"2026-08-07T10:00:00Z","window_ns":2000000,"pad_ns":300000,"combine_ns":100000,"certify_ns":400000,"total_ns":3000000,"participation":4,"prefetch_hit":true},
		{"round":2,"start":"2026-08-07T10:00:01Z","window_ns":5000000,"pad_ns":200000,"combine_ns":90000,"certify_ns":300000,"total_ns":9000000,"participation":3,"stragglers":1,"failed":true}
	]}]`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/rounds" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	var out bytes.Buffer
	if err := traceCmd([]string{"-url", srv.URL, "-n", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "SESSION") || !strings.Contains(got, "WINDOW") {
		t.Fatalf("missing table header:\n%s", got)
	}
	// -n 1 keeps only the slowest round (round 2, total 9ms).
	if lines := strings.Count(strings.TrimSpace(got), "\n"); lines != 1 {
		t.Fatalf("want header + 1 row, got %d rows:\n%s", lines, got)
	}
	if !strings.Contains(got, "9ms") || strings.Contains(got, "prefetch") {
		t.Fatalf("want only round 2 (slowest):\n%s", got)
	}
	if !strings.Contains(got, "FAILED") {
		t.Fatalf("failed flag not rendered:\n%s", got)
	}
	if !strings.Contains(got, "aabbccdd") {
		t.Fatalf("session prefix not rendered:\n%s", got)
	}

	out.Reset()
	if err := traceCmd([]string{"-url", srv.URL, "-all"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "prefetch") {
		t.Fatalf("-all must include round 1's prefetch flag:\n%s", got)
	}
}

func TestTraceCmdRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{{}, {"-url", "http://x", "-zzz"}} {
		var out bytes.Buffer
		if err := traceCmd(args, &out); err == nil {
			t.Errorf("traceCmd(%v) succeeded, want error", args)
		}
	}
}
