package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"dissent"
)

// tracedSession mirrors one entry of dissentd's /debug/rounds payload.
type tracedSession struct {
	Session string               `json:"session"`
	Group   string               `json:"group"`
	Role    string               `json:"role"`
	Traces  []dissent.RoundTrace `json:"traces"`
}

// traceRow is one flattened round span with its owning session's tag.
type traceRow struct {
	group, role string
	t           dissent.RoundTrace
}

// traceCmd implements "dissent trace": fetch a daemon's recent round
// span records from /debug/rounds and print the slowest ones, so an
// operator can see where round latency goes (window vs pad vs combine
// vs certify) without a metrics stack.
func traceCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dissent trace", flag.ContinueOnError)
	url := fs.String("url", "", "debug endpoint base URL, e.g. http://server0:7090 (dissentd -metrics address)")
	n := fs.Int("n", 10, "print the N slowest recent rounds")
	all := fs.Bool("all", false, "print every retained round, newest first, instead of the slowest")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return errors.New("dissent trace: -url is required")
	}

	// Always fetch each session's full ring (128 spans): picking the N
	// slowest needs all of it.
	resp, err := http.Get(strings.TrimRight(*url, "/") + "/debug/rounds?n=128")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dissent trace: GET /debug/rounds: %s", resp.Status)
	}
	var sessions []tracedSession
	if err := json.NewDecoder(resp.Body).Decode(&sessions); err != nil {
		return fmt.Errorf("dissent trace: decode /debug/rounds: %w", err)
	}

	rows := make([]traceRow, 0, 64)
	for _, s := range sessions {
		for _, t := range s.Traces {
			if t.Session == "" {
				t.Session = s.Session
			}
			rows = append(rows, traceRow{group: s.Group, role: s.Role, t: t})
		}
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "no round traces yet")
		return nil
	}
	if *all {
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].t.Start.After(rows[j].t.Start) })
	} else {
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].t.Total > rows[j].t.Total })
	}
	if *n > 0 && len(rows) > *n {
		rows = rows[:*n]
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SESSION\tROLE\tROUND\tTOTAL\tWINDOW\tPAD\tCOMBINE\tCERTIFY\tBLAME\tPART\tSTRAG\tFLAGS")
	for _, r := range rows {
		t := r.t
		sid := t.Session
		if len(sid) > 8 {
			sid = sid[:8]
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
			sid, r.role, t.Round,
			fmtDur(t.Total), fmtDur(t.Window), fmtDur(t.Pad), fmtDur(t.Combine),
			fmtDur(t.Certify), fmtDur(t.Blame),
			t.Participation, t.Stragglers, traceFlags(t))
	}
	return tw.Flush()
}

// fmtDur renders a phase duration compactly; "-" for phases the role
// did not run.
func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// traceFlags summarizes a span's booleans: prefetch hit, failed round,
// window reopenings, blame verdict.
func traceFlags(t dissent.RoundTrace) string {
	var fl []string
	if t.PrefetchHit {
		fl = append(fl, "prefetch")
	}
	if t.Failed {
		fl = append(fl, "FAILED")
	}
	if t.Attempts > 0 {
		fl = append(fl, fmt.Sprintf("reopened×%d", t.Attempts))
	}
	if t.BlameVerdict != "" {
		v := "blame:" + t.BlameVerdict
		if t.BlameAccused != "" {
			// Verdict plus the accused member, e.g.
			// "blame:client expelled(3f2a9c01…)".
			acc := t.BlameAccused
			if len(acc) > 8 {
				acc = acc[:8] + "…"
			}
			v += "(" + acc + ")"
		}
		fl = append(fl, v)
	}
	if len(fl) == 0 {
		return "-"
	}
	return strings.Join(fl, ",")
}
