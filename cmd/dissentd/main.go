// Command dissentd runs one Dissent server over TCP.
//
// Usage:
//
//	dissentd -group group.json -key server-0.key -roster roster.json -listen :7000 \
//	         [-beacon :7080] [-beacon-store beacon.jsonl]
//
// roster.json maps every member's node ID (hex) to a dialable address:
//
//	{"0a1b2c3d4e5f6071": "server0.example.org:7000", ...}
//
// All servers and clients of a group must share the same group.json
// and roster. The daemon logs round completions, participation counts,
// blame verdicts, and protocol violations.
//
// With -beacon the daemon additionally serves its randomness-beacon
// chain over HTTP (GET /beacon/latest, /beacon/{round},
// /beacon/from/{round}, /beacon/info) so clients and external
// verifiers can fetch and verify per-round randomness; -beacon-store
// persists the chain to an append-only file. A chain left by a
// previous session is archived at startup (DC-net round numbers
// restart with each session) and a fresh file begun.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/cli"
	"dissent/internal/core"
	"dissent/internal/transport"
)

func main() {
	log.SetPrefix("dissentd: ")
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
}

// run parses flags, starts the server, and blocks until a signal; it
// returns an error (instead of exiting) for anything that fails before
// the serving loop, so tests can exercise argument handling.
func run(args []string) error {
	fs := flag.NewFlagSet("dissentd", flag.ContinueOnError)
	groupPath := fs.String("group", "group.json", "group definition file")
	keyPath := fs.String("key", "", "server key file (from keygen)")
	rosterPath := fs.String("roster", "roster.json", "node address roster")
	listen := fs.String("listen", ":7000", "listen address")
	beaconAddr := fs.String("beacon", "", "beacon HTTP listen address (empty = disabled)")
	beaconStore := fs.String("beacon-store", "", "beacon chain file for durable persistence (empty = in-memory)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	def, err := cli.LoadGroup(*groupPath)
	if err != nil {
		return err
	}
	roster, err := cli.LoadRoster(*rosterPath)
	if err != nil {
		return err
	}
	kp, msgKP, err := cli.LoadKeyFile(*keyPath, def.MsgGroup())
	if err != nil {
		return err
	}
	if msgKP == nil {
		return errors.New("key file lacks a message-shuffle key (is this a server key?)")
	}

	opts := core.Options{}
	if *beaconStore != "" {
		if def.Policy.BeaconEpochRounds == 0 {
			return errors.New("-beacon-store set but the group policy disables the beacon")
		}
		store, err := beacon.OpenFileStore(*beaconStore)
		if errors.Is(err, beacon.ErrCorruptStore) {
			// Mid-file corruption (a torn final line is already healed
			// by OpenFileStore): preserve the damaged file for forensics
			// and start fresh rather than refusing to boot — the stored
			// chain is only ever archived, never extended. I/O and
			// permission errors abort instead: the file may be intact.
			archived := fmt.Sprintf("%s.corrupt-%d", *beaconStore, time.Now().Unix())
			if renameErr := os.Rename(*beaconStore, archived); renameErr != nil {
				return fmt.Errorf("archiving corrupt chain file: %v (%w)", renameErr, err)
			}
			log.Printf("beacon chain file corrupt (%v); archived to %s", err, archived)
			store, err = beacon.OpenFileStore(*beaconStore)
		}
		if err != nil {
			return err
		}
		if store.Len() > 0 {
			// A previous session's chain cannot be extended: DC-net
			// round numbers restart at 0 with every fresh setup. Archive
			// it for auditing and start a new chain file.
			latest, _ := store.Latest()
			store.Close()
			archived := fmt.Sprintf("%s.prev-r%d-%d", *beaconStore, latest.Round, time.Now().Unix())
			if err := os.Rename(*beaconStore, archived); err != nil {
				return err
			}
			log.Printf("beacon chain from a previous session archived to %s", archived)
			if store, err = beacon.OpenFileStore(*beaconStore); err != nil {
				return err
			}
		}
		defer store.Close()
		opts.BeaconStore = store
	}

	srv, err := core.NewServer(def, kp, msgKP, opts)
	if err != nil {
		return err
	}

	node, err := transport.Listen(srv.ID(), *listen, roster, srv)
	if err != nil {
		return err
	}
	defer node.Close()
	node.OnEvent = func(e core.Event) {
		log.Printf("round %d: %s %s", e.Round, e.Kind, e.Detail)
	}
	node.OnError = func(err error) { log.Printf("error: %v", err) }

	if *beaconAddr != "" {
		chain := srv.BeaconChain()
		if chain == nil {
			return errors.New("-beacon set but the group policy disables the beacon")
		}
		// Bind synchronously so a taken port is a startup error, not an
		// asynchronous abort mid-protocol.
		ln, err := net.Listen("tcp", *beaconAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		log.Printf("beacon HTTP on %s (GET /beacon/latest, /beacon/{round})", ln.Addr())
		go func() {
			if err := http.Serve(ln, beacon.Handler(chain)); err != nil {
				log.Printf("beacon HTTP: %v", err)
			}
		}()
	}

	gid := def.GroupID()
	log.Printf("server %s (index %d) in group %x listening on %s",
		srv.ID(), srv.Index(), gid[:8], node.Addr())
	if err := node.Start(); err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	return nil
}
