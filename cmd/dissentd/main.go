// Command dissentd runs one Dissent server over TCP, built on the
// public dissent SDK.
//
// Usage:
//
//	dissentd -group group.json -key server-0.key -roster roster.json -listen :7000 \
//	         [-beacon :7080] [-beacon-store beacon.jsonl]
//
// roster.json maps every member's node ID (hex) to a dialable address:
//
//	{"0a1b2c3d4e5f6071": "server0.example.org:7000", ...}
//
// All servers and clients of a group must share the same group.json
// and roster. The daemon logs round completions, participation counts,
// blame verdicts, and protocol violations, and shuts down cleanly on
// SIGINT/SIGTERM (flushing and closing the beacon store).
//
// With -beacon the daemon additionally serves its randomness-beacon
// chain over HTTP (GET /beacon/latest, /beacon/{round},
// /beacon/from/{round}, /beacon/info, and /beacon/schedule — the
// schedule certificate that anchors the chain's session-bound genesis)
// so clients and external verifiers can fetch and verify per-round
// randomness; -beacon-store persists the chain to an append-only file.
// A chain left by a previous session is archived at startup (DC-net
// round numbers and the session genesis restart with each session) and
// a fresh file begun.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dissent"
	"dissent/dissentcfg"
)

func main() {
	log.SetPrefix("dissentd: ")
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatal(err)
	}
}

// run parses flags and serves until SIGINT/SIGTERM cancels the node's
// context; it returns an error (instead of exiting) for anything that
// fails before the serving loop, so tests can exercise argument
// handling.
func run(args []string) error {
	fs := flag.NewFlagSet("dissentd", flag.ContinueOnError)
	groupPath := fs.String("group", "group.json", "group definition file")
	keyPath := fs.String("key", "", "server key file (from keygen)")
	rosterPath := fs.String("roster", "roster.json", "node address roster")
	listen := fs.String("listen", ":7000", "listen address")
	beaconAddr := fs.String("beacon", "", "beacon HTTP listen address (empty = disabled)")
	beaconStore := fs.String("beacon-store", "", "beacon chain file for durable persistence (empty = in-memory)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	grp, err := dissentcfg.LoadGroup(*groupPath)
	if err != nil {
		return err
	}
	roster, err := dissentcfg.LoadRoster(*rosterPath)
	if err != nil {
		return err
	}
	keys, err := dissentcfg.LoadKeys(*keyPath, grp)
	if err != nil {
		return err
	}
	if keys.MsgShuffle == nil {
		return errors.New("key file lacks a message-shuffle key (is this a server key?)")
	}

	opts := []dissent.Option{
		dissent.WithListenAddr(*listen),
		dissent.WithRoster(roster),
		dissent.WithErrorHandler(func(err error) { log.Printf("error: %v", err) }),
	}
	if *beaconStore != "" {
		if grp.Policy.BeaconEpochRounds == 0 {
			return errors.New("-beacon-store set but the group policy disables the beacon")
		}
		store, archived, err := dissent.OpenBeaconStore(*beaconStore)
		if err != nil {
			return err
		}
		// Run(ctx) returning is the shutdown point: close (and flush)
		// the chain file once the node has stopped appending.
		defer store.Close()
		if archived != "" {
			log.Printf("previous beacon chain content archived to %s", archived)
		}
		opts = append(opts, dissent.WithBeaconStore(store))
	}
	if *beaconAddr != "" {
		if grp.Policy.BeaconEpochRounds == 0 {
			return errors.New("-beacon set but the group policy disables the beacon")
		}
		opts = append(opts, dissent.WithBeaconHTTP(*beaconAddr))
		log.Printf("beacon HTTP on %s (GET /beacon/latest, /beacon/{round}, /beacon/schedule)", *beaconAddr)
	}

	node, err := dissent.NewServer(grp, keys, opts...)
	if err != nil {
		return err
	}
	events := node.Subscribe()
	go func() {
		for e := range events {
			log.Printf("round %d: %s %s", e.Round, e.Kind, e.Detail)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	gid := grp.GroupID()
	log.Printf("server %s (index %d) in group %x starting on %s",
		node.ID(), node.Index(), gid[:8], *listen)
	// Report the actually bound address (meaningful with :0 or
	// wildcard listen addresses) once Run attaches the transport.
	go func() {
		for i := 0; i < 100; i++ {
			if a := node.Addr(); a != "" {
				log.Printf("listening on %s", a)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	err = node.Run(ctx)
	if err == nil {
		log.Print("shutting down")
	}
	return err
}
