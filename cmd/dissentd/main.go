// Command dissentd runs one or more Dissent server memberships — one
// per group — in a single process over one shared TCP listener, built
// on the public dissent SDK's Host.
//
// Usage:
//
//	dissentd -group group.json -key server-0.key -roster roster.json -listen :7000 \
//	         [-store state.kv] [-beacon :7080] [-beacon-store beacon.jsonl] [-metrics :7090]
//
// Flags -group, -key, -roster, -store, -beacon, and -beacon-store are
// repeatable and positional: each -group starts a new session block,
// and the -key/-roster/-store/-beacon/-beacon-store flags that follow
// apply to it. One invocation therefore shards many groups behind one
// listener:
//
//	dissentd -listen :7000 \
//	    -group g1/group.json -key g1/server-0.key -roster g1/roster.json \
//	    -group g2/group.json -key g2/server-0.key -roster g2/roster.json
//
// Every roster maps that group's member node IDs (hex) to dialable
// addresses; this daemon's entry must point at the shared -listen
// address:
//
//	{"0a1b2c3d4e5f6071": "server0.example.org:7000", ...}
//
// All servers and clients of a group must share the same group.json
// and roster. The daemon logs round completions, participation counts,
// blame verdicts, and protocol violations per group, and shuts down
// cleanly on SIGINT/SIGTERM (sessions drain first, then every store is
// flushed and closed).
//
// With -store the session persists its durable state — the certified
// roster-update log, blame transcripts, the restart snapshot, and
// (unless -beacon-store overrides it) the beacon chain — to a single
// crash-safe embedded store file. A daemon killed mid-epoch and
// restarted against the same -store file resumes its live session from
// the snapshot: it re-announces itself to the group, reopens in-flight
// rounds, and catches up on rounds certified without it, with no
// manual rejoin. A store whose snapshot predates a different group or
// an abandoned run is cleared at startup.
//
// With -beacon a session additionally serves its randomness-beacon
// chain over HTTP (GET /beacon/latest, /beacon/{round},
// /beacon/from/{round}, /beacon/info, and /beacon/schedule — the
// schedule certificate that anchors the chain's session-bound genesis)
// so clients and external verifiers can fetch and verify per-round
// randomness; -beacon-store persists that chain to an append-only
// file. A chain left by a previous session is archived at startup
// (DC-net round numbers and the session genesis restart with each
// session) and a fresh file begun.
//
// With -metrics the daemon serves the host's operator/debug endpoint:
// Prometheus text exposition at /metrics (per-session round, traffic,
// and churn counters plus the dissent_round_phase_seconds latency
// histograms), the same snapshot as expvar-style JSON at
// /metrics.json, recent per-round span records at /debug/rounds (the
// input of `dissent trace`), the standard runtime profiles under
// /debug/pprof/, and every session's certified membership roster at
// /roster: the roster version, hash-chain digest, member list with
// expulsion state, and the latest certified RosterUpdate (hex),
// verifiable against the group's server keys.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dissent"
	"dissent/dissentcfg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "dissentd:", err)
		os.Exit(1)
	}
}

// sessionSpec is one -group block's file set: a group definition plus
// the key, roster, beacon, and store flags that followed it.
type sessionSpec struct {
	group, key, roster  string
	beacon, beaconStore string
	store               string
	groupSet            bool
}

// parseSpecs wires the repeatable session-block flags onto fs. Each
// -group begins a new block; the other flags apply to the most recent
// one (or to the implicit default block when they come first).
func parseSpecs(fs *flag.FlagSet) *[]*sessionSpec {
	specs := &[]*sessionSpec{}
	cur := func() *sessionSpec {
		if len(*specs) == 0 {
			s := &sessionSpec{group: "group.json", roster: "roster.json"}
			*specs = append(*specs, s)
			return s
		}
		return (*specs)[len(*specs)-1]
	}
	fs.Func("group", "group definition file; repeatable — each use starts a new session block (default group.json)", func(v string) error {
		s := cur()
		if s.groupSet {
			s = &sessionSpec{group: v, roster: "roster.json", groupSet: true}
			*specs = append(*specs, s)
			return nil
		}
		s.group, s.groupSet = v, true
		return nil
	})
	fs.Func("key", "server key file (from keygen) for the current -group block", func(v string) error {
		cur().key = v
		return nil
	})
	fs.Func("roster", "node address roster for the current -group block (default roster.json)", func(v string) error {
		cur().roster = v
		return nil
	})
	fs.Func("beacon", "beacon HTTP listen address for the current -group block (empty = disabled)", func(v string) error {
		cur().beacon = v
		return nil
	})
	fs.Func("beacon-store", "beacon chain file for the current -group block (empty = in-memory)", func(v string) error {
		cur().beaconStore = v
		return nil
	})
	fs.Func("store", "durable state store file for the current -group block; a server restarted against it resumes its session (empty = in-memory)", func(v string) error {
		cur().store = v
		return nil
	})
	return specs
}

// run parses flags and serves until SIGINT/SIGTERM cancels the host;
// it returns an error (instead of exiting) for anything that fails
// before the serving loop, so tests can exercise argument handling.
func run(args []string) error {
	fs := flag.NewFlagSet("dissentd", flag.ContinueOnError)
	listen := fs.String("listen", ":7000", "shared TCP listen address for every session")
	metricsAddr := fs.String("metrics", "", "debug HTTP listen address serving Prometheus /metrics, /metrics.json, /debug/rounds, /debug/pprof/, /roster (empty = disabled)")
	logLevel := fs.String("log-level", "info", "log level: debug (per-round engine milestones), info, warn, error")
	specs := parseSpecs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(*specs) == 0 {
		*specs = append(*specs, &sessionSpec{group: "group.json", roster: "roster.json"})
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	host, err := dissent.NewHost(
		dissent.WithHostListenAddr(*listen),
		dissent.WithHostLogger(logger),
	)
	if err != nil {
		return err
	}
	// Teardown order matters: the host closes every session (which
	// stops appending to the chains, roster logs, and snapshots) before
	// the store closes flush the files.
	var stores []interface{ Close() error }
	defer func() {
		host.Close()
		for _, st := range stores {
			st.Close()
		}
	}()

	for _, spec := range *specs {
		if err := openSpec(host, logger, spec, &stores); err != nil {
			return fmt.Errorf("%s: %w", spec.group, err)
		}
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		go http.Serve(ln, host.DebugHandler())
		logger.Info("debug HTTP up", "addr", ln.Addr().String(),
			"endpoints", "/metrics /metrics.json /debug/rounds /debug/pprof/ /roster")
	}

	logger.Info("host listening", "addr", host.Addr(), "sessions", len(host.Sessions()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logger.Info("shutting down")
	return nil
}

// openSpec loads one session block's files and opens its membership on
// the host. Any store it opens (beacon or state) is appended to
// stores; the caller closes them after the host has shut down.
func openSpec(host *dissent.Host, logger *slog.Logger, spec *sessionSpec, stores *[]interface{ Close() error }) error {
	grp, err := dissentcfg.LoadGroup(spec.group)
	if err != nil {
		return err
	}
	roster, err := dissentcfg.LoadRoster(spec.roster)
	if err != nil {
		return err
	}
	keys, err := dissentcfg.LoadKeys(spec.key, grp)
	if err != nil {
		return err
	}
	if keys.MsgShuffle == nil {
		return errors.New("key file lacks a message-shuffle key (is this a server key?)")
	}

	opts := []dissent.Option{dissent.WithRoster(roster)}
	if spec.store != "" {
		kv, err := dissent.OpenStateStore(spec.store)
		if err != nil {
			return err
		}
		*stores = append(*stores, kv)
		opts = append(opts, dissent.WithStateStore(kv))
		logger.Info("state store open", "path", kv.Path(), "records", kv.Len())
	}
	if spec.beaconStore != "" {
		if grp.Policy.BeaconEpochRounds == 0 {
			return errors.New("-beacon-store set but the group policy disables the beacon")
		}
		store, archived, err := dissent.OpenBeaconStore(spec.beaconStore)
		if err != nil {
			return err
		}
		*stores = append(*stores, store)
		if archived != "" {
			logger.Info("previous beacon chain content archived", "path", archived)
		}
		opts = append(opts, dissent.WithBeaconStore(store))
	}
	if spec.beacon != "" {
		if grp.Policy.BeaconEpochRounds == 0 {
			return errors.New("-beacon set but the group policy disables the beacon")
		}
		opts = append(opts, dissent.WithBeaconHTTP(spec.beacon))
		logger.Info("beacon HTTP up", "addr", spec.beacon,
			"endpoints", "/beacon/latest /beacon/{round} /beacon/schedule")
	}

	sess, err := host.OpenSession(grp, keys, opts...)
	if err != nil {
		return err
	}
	if sess.Role() != dissent.RoleServer {
		sess.Close()
		return errors.New("key file belongs to a client of this group, not a server")
	}

	gid := grp.GroupID()
	glog := logger.With("group", fmt.Sprintf("%x", gid[:8]))
	glog.Info("session open", "server", sess.ID().String(), "index", sess.Index())
	events := sess.Subscribe() // subscribe before the goroutine runs: the session is already live
	go func() {
		for e := range events {
			glog.Info("event", "round", e.Round, "kind", e.Kind.String(), "detail", e.Detail)
		}
	}()
	return nil
}
