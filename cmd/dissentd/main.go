// Command dissentd runs one Dissent server over TCP.
//
// Usage:
//
//	dissentd -group group.json -key server-0.key -roster roster.json -listen :7000
//
// roster.json maps every member's node ID (hex) to a dialable address:
//
//	{"0a1b2c3d4e5f6071": "server0.example.org:7000", ...}
//
// All servers and clients of a group must share the same group.json
// and roster. The daemon logs round completions, participation counts,
// blame verdicts, and protocol violations.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dissent/internal/cli"
	"dissent/internal/core"
	"dissent/internal/transport"
)

func main() {
	groupPath := flag.String("group", "group.json", "group definition file")
	keyPath := flag.String("key", "", "server key file (from keygen)")
	rosterPath := flag.String("roster", "roster.json", "node address roster")
	listen := flag.String("listen", ":7000", "listen address")
	flag.Parse()
	log.SetPrefix("dissentd: ")

	def, err := cli.LoadGroup(*groupPath)
	if err != nil {
		log.Fatal(err)
	}
	roster, err := cli.LoadRoster(*rosterPath)
	if err != nil {
		log.Fatal(err)
	}
	kp, msgKP, err := cli.LoadKeyFile(*keyPath, def.MsgGroup())
	if err != nil {
		log.Fatal(err)
	}
	if msgKP == nil {
		log.Fatal("key file lacks a message-shuffle key (is this a server key?)")
	}

	srv, err := core.NewServer(def, kp, msgKP, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	node, err := transport.Listen(srv.ID(), *listen, roster, srv)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	node.OnEvent = func(e core.Event) {
		log.Printf("round %d: %s %s", e.Round, e.Kind, e.Detail)
	}
	node.OnError = func(err error) { log.Printf("error: %v", err) }

	gid := def.GroupID()
	log.Printf("server %s (index %d) in group %x listening on %s",
		srv.ID(), srv.Index(), gid[:8], node.Addr())
	if err := node.Start(); err != nil {
		log.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
}
