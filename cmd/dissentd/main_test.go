package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunRejectsBadInputs checks that every pre-serve failure path
// returns an error instead of starting the daemon.
func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	badGroup := filepath.Join(dir, "bad-group.json")
	if err := os.WriteFile(badGroup, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"missing group file", []string{"-group", missing}},
		{"malformed group file", []string{"-group", badGroup}},
		{"missing key file", []string{"-group", missing, "-key", missing}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}
