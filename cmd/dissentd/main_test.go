package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dissent/dissentcfg"
)

// TestRunRejectsBadInputs checks that every pre-serve failure path
// returns an error instead of starting the daemon.
func TestRunRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	badGroup := filepath.Join(dir, "bad-group.json")
	if err := os.WriteFile(badGroup, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"missing group file", []string{"-group", missing}},
		{"malformed group file", []string{"-group", badGroup}},
		{"missing key file", []string{"-group", missing, "-key", missing}},
		{"second block bad", []string{"-group", badGroup, "-group", missing}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}

// TestRunRejectsClientKey checks a client key file is refused — the
// daemon serves server memberships only.
func TestRunRejectsClientKey(t *testing.T) {
	dir := t.TempDir()
	if _, err := dissentcfg.Generate(dir, dissentcfg.GenerateConfig{
		Servers: 2, Clients: 2, MessageGroup: "modp-512-test", BeaconEpochRounds: 0,
	}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-listen", "127.0.0.1:0",
		"-group", filepath.Join(dir, "group.json"),
		"-key", filepath.Join(dir, "client-0.key"),
		"-roster", filepath.Join(dir, "roster.json"),
	})
	if err == nil {
		t.Fatal("run accepted a client key")
	}
}

// TestParseSpecsBlocks pins the positional flag grammar: each -group
// starts a new block, the satellite flags attach to the most recent
// block, and flags before any -group attach to the implicit default
// block.
func TestParseSpecsBlocks(t *testing.T) {
	parse := func(args ...string) []*sessionSpec {
		t.Helper()
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		specs := parseSpecs(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return *specs
	}

	// Two full blocks.
	specs := parse(
		"-group", "g1.json", "-key", "k1.key", "-roster", "r1.json", "-beacon", ":7080",
		"-group", "g2.json", "-key", "k2.key", "-roster", "r2.json", "-beacon-store", "b2.jsonl",
	)
	if len(specs) != 2 {
		t.Fatalf("got %d blocks, want 2", len(specs))
	}
	if specs[0].group != "g1.json" || specs[0].key != "k1.key" || specs[0].roster != "r1.json" || specs[0].beacon != ":7080" {
		t.Errorf("block 0 = %+v", specs[0])
	}
	if specs[1].group != "g2.json" || specs[1].key != "k2.key" || specs[1].roster != "r2.json" || specs[1].beaconStore != "b2.jsonl" {
		t.Errorf("block 1 = %+v", specs[1])
	}

	// Single-session compatibility: -key before -group applies to the
	// default block, whose group path is then overridden by -group.
	specs = parse("-key", "server-0.key", "-group", "custom.json")
	if len(specs) != 1 {
		t.Fatalf("got %d blocks, want 1", len(specs))
	}
	if specs[0].group != "custom.json" || specs[0].key != "server-0.key" || specs[0].roster != "roster.json" {
		t.Errorf("default block = %+v", specs[0])
	}

	// No flags at all: no blocks (the caller appends the default block
	// when the list is empty).
	if specs := parse(); len(specs) != 0 {
		t.Fatalf("empty parse produced %d blocks", len(specs))
	}
}
