package dissent_test

// Membership-churn integration tests: a client dies mid-window (servers
// cover, the round still certifies), a client is expelled by server
// policy, and the expellee rejoins at the next epoch boundary with the
// roster version advancing — through the public SDK alone, over the
// in-process SimNet (with fault injection) and over real loopback TCP.
// A brand-new joiner attaching mid-session is covered over both
// fabrics too.

import (
	"context"
	"testing"
	"time"

	"dissent"
)

// churnPolicy is the fast-epoch policy the churn tests share.
func churnPolicy() dissent.Policy {
	return testPolicy(func(p *dissent.Policy) {
		p.BeaconEpochRounds = 4
		p.ReadmitCooldownRounds = 0
		p.Alpha = 0.5
		p.WindowThreshold = 0.6
		p.OpenAdmission = false
	})
}

// waitEvent drains ch until match returns true or the deadline fires.
func waitEvent(t *testing.T, what string, ch <-chan dissent.Event, match func(dissent.Event) bool, d time.Duration) dissent.Event {
	t.Helper()
	deadline := time.After(d)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				t.Fatalf("%s: subscription closed early", what)
			}
			if match(e) {
				return e
			}
		case <-deadline:
			t.Fatalf("%s: not observed after %v", what, d)
		}
	}
}

// driveChurnScenario runs the acceptance scenario over an arbitrary
// per-node transport wiring: kill a client mid-window, expel another by
// policy, rejoin it at an epoch boundary, and verify it resumes
// sending and receiving with the roster version strictly increasing.
func driveChurnScenario(t *testing.T, grp *dissent.Group, sKeys, cKeys []dissent.Keys,
	extraOpts func(role dissent.Role, i int) []dissent.Option) {
	t.Helper()
	g := startGroup(t, grp, sKeys, cKeys, extraOpts)
	defer g.stop(t)

	// Pick scenario members by definition index so the killed client and
	// the expellee attach to different upstream servers: a server whose
	// entire client set is dead or expelled degrades (correctly, §3.7)
	// to hard-timeout rounds, which is paper-faithful but would slow
	// this test to a crawl. Definition indices 0/2 attach to server 0,
	// index 1 to server 1 (UpstreamServer = idx mod numServers).
	byDefIdx := func(idx int) *dissent.Node {
		for _, n := range g.clients {
			if n.Index() == idx {
				return n
			}
		}
		t.Fatalf("no client with definition index %d", idx)
		return nil
	}
	server := g.servers[0]
	expellee := byDefIdx(2) // upstream server 0
	observer := byDefIdx(0) // upstream server 0
	killed := byDefIdx(1)   // upstream server 1 (server 1 keeps index 3 alive)
	rounds := server.Subscribe(dissent.EventRoundComplete)
	roster := server.Subscribe(dissent.EventMemberExpelled, dissent.EventMemberJoined, dissent.EventRosterChanged)
	obsRoster := observer.Subscribe(dissent.EventMemberJoined)
	selfExpel := expellee.Subscribe(dissent.EventMemberExpelled)

	// A certified round first.
	waitEvent(t, "first certified round", rounds, func(dissent.Event) bool { return true }, 60*time.Second)

	// Kill a client mid-window: close its session abruptly. Rounds must
	// keep certifying — the servers cover the silent client (§3.5).
	killed.Session().Close()
	waitEvent(t, "round after client death", rounds, func(dissent.Event) bool { return true }, 60*time.Second)
	waitEvent(t, "second round after client death", rounds, func(dissent.Event) bool { return true }, 60*time.Second)

	// Expel client 2 by server policy; the removal lands at the next
	// epoch boundary as a certified roster update.
	v0 := server.Session().RosterVersion()
	if err := server.Session().Expel(expellee.ID()); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, "expulsion", roster, func(e dissent.Event) bool {
		return e.Kind == dissent.EventMemberExpelled && e.Culprit == expellee.ID()
	}, 60*time.Second)
	v1 := server.Session().RosterVersion()
	if v1 <= v0 {
		t.Fatalf("roster version %d did not advance past %d with the expulsion", v1, v0)
	}

	// The expellee learns of its own expulsion, then rejoins;
	// re-admission lands at a later boundary.
	waitEvent(t, "expulsion at the expellee", selfExpel, func(e dissent.Event) bool {
		return e.Culprit == expellee.ID()
	}, 60*time.Second)
	// Re-admission needs live rounds to cross an epoch boundary; under a
	// CPU-starved parallel test run those real-time rounds slow down, so
	// this deadline is deliberately generous.
	rejoinCtx, cancelRejoin := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancelRejoin()
	if err := expellee.Rejoin(rejoinCtx); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	waitEvent(t, "re-admission at a server", roster, func(e dissent.Event) bool {
		return e.Kind == dissent.EventMemberJoined && e.Culprit == expellee.ID()
	}, 60*time.Second)
	// Other clients observe the re-admission too.
	waitEvent(t, "re-admission at an observer client", obsRoster, func(e dissent.Event) bool {
		return e.Culprit == expellee.ID()
	}, 60*time.Second)
	v2 := server.Session().RosterVersion()
	if v2 <= v1 {
		t.Fatalf("roster version %d did not advance past %d with the re-admission", v2, v1)
	}

	// The rejoined client resumes sending and receiving.
	const payload = "rejoined and speaking"
	if err := expellee.Send(context.Background(), []byte(payload)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(60 * time.Second)
	for _, node := range []*dissent.Node{expellee, observer} {
		for {
			var got dissent.RoundOutput
			var ok bool
			select {
			case got, ok = <-node.Messages():
				if !ok {
					t.Fatal("message channel closed early")
				}
			case <-deadline:
				t.Fatalf("rejoined client's payload never reached %v %d", node.Role(), node.Index())
			}
			if string(got.Data) == payload {
				break
			}
		}
	}

	// Versions agree across roles, and pipeline occupancy never exceeds
	// the configured depth (1 for serial runs).
	if sv, cv := server.RosterVersion(), observer.RosterVersion(); cv > sv {
		t.Fatalf("client version %d ahead of server %d", cv, sv)
	}
	if m := server.Session().Metrics(); m.RoundsInFlight > m.PipelineDepth {
		t.Fatalf("rounds in flight %d exceed pipeline depth %d", m.RoundsInFlight, m.PipelineDepth)
	}
}

// TestChurnExpelRejoinOverSimNet runs the churn acceptance scenario on
// the in-process fabric, with link faults injected on the dead
// client's links (drop everything — a crash plus network blackout).
func TestChurnExpelRejoinOverSimNet(t *testing.T) {
	policy := churnPolicy()
	sKeys, cKeys, grp := buildGroup(t, 2, 5, policy)
	net := dissent.NewSimNet()
	defer net.Close()
	net.SetFaultSeed(7)
	net.SetLatency(func(from, to dissent.NodeID) time.Duration { return time.Millisecond })
	// Mild jitter on every server-client link exercises the ordered
	// delivery guarantee under the full protocol.
	for _, ck := range cKeys {
		for _, sk := range sKeys {
			net.SetLinkFault(memberID(grp, ck), memberID(grp, sk), dissent.FaultSpec{
				Jitter: 2 * time.Millisecond,
			})
		}
	}
	driveChurnScenario(t, grp, sKeys, cKeys, func(dissent.Role, int) []dissent.Option {
		return []dissent.Option{dissent.WithTransport(net)}
	})
}

// TestChurnExpelRejoinPipelinedSimNet reruns the churn acceptance
// scenario with every member at pipeline depth 2: expulsion and
// re-admission land at epoch boundaries, where the two-deep pipeline
// must drain to depth 1 before the roster and beacon rotate — a failed
// drain diverges the group's slot layouts and the scenario stalls. The
// rejoined member's welcome carries the donor's pending pipeline
// state, so its payload round-tripping proves mid-pipeline joins too.
func TestChurnExpelRejoinPipelinedSimNet(t *testing.T) {
	policy := churnPolicy()
	sKeys, cKeys, grp := buildGroup(t, 2, 5, policy)
	net := dissent.NewSimNet()
	defer net.Close()
	net.SetFaultSeed(11)
	net.SetLatency(func(from, to dissent.NodeID) time.Duration { return time.Millisecond })
	for _, ck := range cKeys {
		for _, sk := range sKeys {
			net.SetLinkFault(memberID(grp, ck), memberID(grp, sk), dissent.FaultSpec{
				Jitter: 2 * time.Millisecond,
			})
		}
	}
	driveChurnScenario(t, grp, sKeys, cKeys, func(dissent.Role, int) []dissent.Option {
		return []dissent.Option{dissent.WithTransport(net), dissent.WithPipelineDepth(2)}
	})
}

// TestChurnExpelRejoinOverTCP runs the same scenario over loopback TCP.
func TestChurnExpelRejoinOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	policy := churnPolicy()
	policy.WindowMin = 20 * time.Millisecond
	sKeys, cKeys, grp := buildGroup(t, 2, 5, policy)
	roster := dissent.Roster{}
	ports := reservePorts(t, len(sKeys)+len(cKeys))
	sAddrs := ports[:len(sKeys)]
	cAddrs := ports[len(sKeys):]
	for i, k := range sKeys {
		roster[memberID(grp, k)] = sAddrs[i]
	}
	for i, k := range cKeys {
		roster[memberID(grp, k)] = cAddrs[i]
	}
	driveChurnScenario(t, grp, sKeys, cKeys, func(role dissent.Role, i int) []dissent.Option {
		addr := sAddrs
		if role == dissent.RoleClient {
			addr = cAddrs
		}
		return []dissent.Option{dissent.WithListenAddr(addr[i]), dissent.WithRoster(roster)}
	})
}

// driveJoinerScenario admits a brand-new member mid-session and checks
// it becomes a full participant. encodedKey is the joiner's identity
// key in canonical encoding, pre-approved through Session.Admit on the
// contact server (definition server 0) — exercising the closed
// admission policy path.
func driveJoinerScenario(t *testing.T, grp *dissent.Group, sKeys, cKeys []dissent.Keys,
	joiner *dissent.Node, encodedKey []byte,
	extraOpts func(role dissent.Role, i int) []dissent.Option) {
	t.Helper()
	g := startGroup(t, grp, sKeys, cKeys, extraOpts)
	defer g.stop(t)

	server := g.servers[0]
	rounds := server.Subscribe(dissent.EventRoundComplete)
	joined := server.Subscribe(dissent.EventMemberJoined)
	waitEvent(t, "first certified round", rounds, func(dissent.Event) bool { return true }, 60*time.Second)

	// Closed admission: pre-approve the joiner's key on the contact
	// server (definition server 0), then run the joiner.
	contactID := grp.Servers[0].ID
	var contact *dissent.Node
	for _, s := range g.servers {
		if s.ID() == contactID {
			contact = s
		}
	}
	if contact == nil {
		t.Fatal("contact server not running")
	}
	if err := contact.Admit(encodedKey); err != nil {
		t.Fatal(err)
	}

	joinCtx, cancelJoin := context.WithCancel(context.Background())
	defer cancelJoin()
	joinErr := make(chan error, 1)
	go func() { joinErr <- joiner.Run(joinCtx) }()
	defer func() {
		cancelJoin()
		if err := <-joinErr; err != nil {
			t.Errorf("joiner Run returned %v", err)
		}
	}()

	waitEvent(t, "joiner admission", joined, func(e dissent.Event) bool {
		return e.Culprit == joiner.ID()
	}, 60*time.Second)

	// The joiner participates: its payload surfaces at an old client.
	const payload = "first words of a mid-session joiner"
	if err := joiner.Send(context.Background(), []byte(payload)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(60 * time.Second)
	for _, node := range []*dissent.Node{g.clients[0], joiner} {
		for {
			var got dissent.RoundOutput
			var ok bool
			select {
			case got, ok = <-node.Messages():
				if !ok {
					t.Fatal("message channel closed early")
				}
			case <-deadline:
				t.Fatalf("joiner payload never reached %v %d", node.Role(), node.Index())
			}
			if string(got.Data) == payload {
				break
			}
		}
	}
	if v := server.RosterVersion(); v == 0 {
		t.Fatal("roster version still 0 after an admission")
	}
}

// TestJoinerOverSimNet admits a new member over the in-process fabric.
func TestJoinerOverSimNet(t *testing.T) {
	policy := churnPolicy()
	sKeys, cKeys, grp := buildGroup(t, 2, 3, policy)
	jKeys, err := dissent.GenerateClientKeys()
	if err != nil {
		t.Fatal(err)
	}
	net := dissent.NewSimNet()
	defer net.Close()
	joiner, err := dissent.NewJoiner(grp, jKeys, dissent.WithTransport(net))
	if err != nil {
		t.Fatal(err)
	}
	driveJoinerScenario(t, grp, sKeys, cKeys, joiner, dissent.EncodePublicKey(grp, jKeys),
		func(dissent.Role, int) []dissent.Option {
			return []dissent.Option{dissent.WithTransport(net)}
		})
}

// TestJoinerOverTCP admits a new member over loopback TCP: the joiner
// advertises its listen address and servers attach it mid-session.
func TestJoinerOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	policy := churnPolicy()
	policy.WindowMin = 20 * time.Millisecond
	sKeys, cKeys, grp := buildGroup(t, 2, 3, policy)
	jKeys, err := dissent.GenerateClientKeys()
	if err != nil {
		t.Fatal(err)
	}
	roster := dissent.Roster{}
	ports := reservePorts(t, len(sKeys)+len(cKeys)+1)
	sAddrs := ports[:len(sKeys)]
	cAddrs := ports[len(sKeys) : len(sKeys)+len(cKeys)]
	jAddr := ports[len(sKeys)+len(cKeys)]
	for i, k := range sKeys {
		roster[memberID(grp, k)] = sAddrs[i]
	}
	for i, k := range cKeys {
		roster[memberID(grp, k)] = cAddrs[i]
	}
	// The joiner's roster needs only the servers it contacts; its own
	// address travels in the join request (WithAdvertiseAddr) and is
	// attached to the server fabric by the roster update.
	joiner, err := dissent.NewJoiner(grp, jKeys,
		dissent.WithListenAddr(jAddr),
		dissent.WithAdvertiseAddr(jAddr),
		dissent.WithRoster(roster))
	if err != nil {
		t.Fatal(err)
	}
	driveJoinerScenario(t, grp, sKeys, cKeys, joiner, dissent.EncodePublicKey(grp, jKeys),
		func(role dissent.Role, i int) []dissent.Option {
			addr := sAddrs
			if role == dissent.RoleClient {
				addr = cAddrs
			}
			return []dissent.Option{dissent.WithListenAddr(addr[i]), dissent.WithRoster(roster)}
		})
}
