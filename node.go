package dissent

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"dissent/internal/beacon"
	"dissent/internal/core"
)

// Role distinguishes the two kinds of group members.
type Role int

// Roles.
const (
	// RoleServer is one of the group's anytrust servers.
	RoleServer Role = iota + 1
	// RoleClient is an anonymity-set member.
	RoleClient
)

func (r Role) String() string {
	switch r {
	case RoleServer:
		return "server"
	case RoleClient:
		return "client"
	default:
		return "unknown"
	}
}

// Node is one running group member: a protocol engine bound to a
// transport, with a context-based lifecycle and channel-based
// application APIs. Construct with NewServer or NewClient, then call
// Run; Send queues anonymous payloads (clients), Messages delivers the
// anonymous channel's cleartext, Subscribe observes protocol events.
// All methods are safe for concurrent use.
type Node struct {
	role Role
	def  *Group
	cfg  nodeConfig

	engine core.Engine
	server *core.Server // nil for clients
	client *core.Client // nil for servers
	id     NodeID

	mu      sync.Mutex // engine lock; guards link/timer/lifecycle below
	link    Link
	timer   *time.Timer
	timerAt time.Time
	started bool
	closed  bool
	// startDone gates inbound delivery: messages arriving between the
	// transport attach and engine.Start buffer here, else an early
	// peer's message could advance the engine before Start initializes
	// it (and Start would then clobber that progress).
	startDone bool
	preStart  []*Message

	subMu     sync.Mutex
	subs      []*subscription
	msgs      chan RoundOutput
	chansDone bool
}

type subscription struct {
	kinds map[EventKind]bool // nil = all kinds
	ch    chan Event
}

// NewServer builds a server node. keys must hold both the identity
// keypair and the message-shuffle keypair (dissentcfg.LoadKeys reads
// both from a server key file).
func NewServer(def *Group, keys Keys, opts ...Option) (*Node, error) {
	if keys.Identity == nil {
		return nil, errors.New("dissent: server keys lack an identity keypair")
	}
	if keys.MsgShuffle == nil {
		return nil, errors.New("dissent: server keys lack a message-shuffle keypair")
	}
	n := newNode(RoleServer, def, opts)
	srv, err := core.NewServer(def, keys.Identity, keys.MsgShuffle, n.coreOptions())
	if err != nil {
		return nil, err
	}
	n.server, n.engine, n.id = srv, srv, srv.ID()
	return n, nil
}

// NewClient builds a client node from an identity keypair.
func NewClient(def *Group, keys Keys, opts ...Option) (*Node, error) {
	if keys.Identity == nil {
		return nil, errors.New("dissent: client keys lack an identity keypair")
	}
	n := newNode(RoleClient, def, opts)
	cl, err := core.NewClient(def, keys.Identity, n.coreOptions())
	if err != nil {
		return nil, err
	}
	n.client, n.engine, n.id = cl, cl, cl.ID()
	return n, nil
}

func newNode(role Role, def *Group, opts []Option) *Node {
	cfg := buildConfig(opts)
	n := &Node{role: role, def: def, cfg: cfg}
	n.msgs = make(chan RoundOutput, cfg.msgBuf)
	return n
}

// coreOptions maps the SDK configuration onto engine options. The
// message-shuffle group always comes from the policy, so engines and
// definition can never disagree.
func (n *Node) coreOptions() core.Options {
	return core.Options{
		MessageGroup: n.def.MsgGroup(),
		BeaconStore:  n.cfg.store,
	}
}

// ID returns the node's self-certifying member ID.
func (n *Node) ID() NodeID { return n.id }

// Role returns whether this node is a server or a client.
func (n *Node) Role() Role { return n.role }

// Group returns the group definition the node belongs to.
func (n *Node) Group() *Group { return n.def }

// Index returns the node's index within its role's member list.
func (n *Node) Index() int {
	if n.server != nil {
		return n.server.Index()
	}
	return n.client.Index()
}

// Addr returns the transport-level address once Run has attached the
// node, or "".
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.link == nil {
		return ""
	}
	return n.link.Addr()
}

// BeaconChain returns the node's verified randomness-beacon replica,
// or nil when the group policy disables the beacon. The chain is safe
// for concurrent reads while the node runs.
func (n *Node) BeaconChain() *BeaconChain {
	if n.server != nil {
		return n.server.BeaconChain()
	}
	return n.client.BeaconChain()
}

// Run attaches the node to its transport, starts the protocol engine,
// and serves until ctx is cancelled, then shuts down gracefully:
// transport closed, timers stopped, Messages and subscription channels
// closed. It returns nil after a clean ctx-driven shutdown and an
// error if startup fails. Run may be called once.
func (n *Node) Run(ctx context.Context) error {
	n.mu.Lock()
	if n.started || n.closed {
		n.mu.Unlock()
		return errors.New("dissent: Run called twice")
	}
	n.started = true
	n.mu.Unlock()

	tr := n.cfg.transport
	if tr == nil {
		if n.cfg.roster == nil {
			n.shutdown()
			return errors.New("dissent: no transport configured (use WithTransport, or WithListenAddr+WithRoster for TCP)")
		}
		tr = TCP(n.cfg.listenAddr, n.cfg.roster)
	}
	link, err := tr.Dial(n.id, n.inject, n.cfg.onError)
	if err != nil {
		n.shutdown()
		return err
	}
	n.mu.Lock()
	if n.closed { // cancelled between Dial and here
		n.mu.Unlock()
		link.Close()
		return nil
	}
	n.link = link
	n.mu.Unlock()

	if n.cfg.beaconAddr != "" {
		chain := n.BeaconChain()
		if chain == nil {
			n.shutdown()
			return errors.New("dissent: beacon HTTP enabled but the group policy disables the beacon")
		}
		ln, err := net.Listen("tcp", n.cfg.beaconAddr)
		if err != nil {
			n.shutdown()
			return err
		}
		hs := &http.Server{Handler: beacon.HandlerWithSchedule(chain, n.scheduleCert)}
		go hs.Serve(ln)
		defer hs.Close()
	}

	n.mu.Lock()
	out, err := n.engine.Start(time.Now())
	if err != nil {
		n.mu.Unlock()
		n.shutdown()
		return err
	}
	n.startDone = true
	buffered := n.preStart
	n.preStart = nil
	n.mu.Unlock()
	n.dispatch(out)
	// Replay messages that raced ahead of Start, in arrival order.
	for _, m := range buffered {
		n.inject(m)
	}

	<-ctx.Done()
	n.shutdown()
	return nil
}

// Send queues an application payload for anonymous transmission in
// the client's pseudonym slot. Payloads larger than the slot are
// fragmented across rounds; reassembly (and any framing) is the
// application's concern. Queueing succeeds before the schedule is
// established — the payload rides the first available round.
func (n *Node) Send(ctx context.Context, data []byte) error {
	if n.client == nil {
		return errors.New("dissent: Send on a server node (servers relay; only clients originate)")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("dissent: node is shut down")
	}
	n.client.Send(data)
	return nil
}

// Messages returns the channel of decoded anonymous messages — every
// certified round's slot payloads, at servers and clients alike. The
// channel closes when the node shuts down. If the application does not
// drain it, the oldest undelivered outputs are dropped (see
// WithMessageBuffer).
func (n *Node) Messages() <-chan RoundOutput { return n.msgs }

// Subscribe returns a channel of protocol events, filtered to the
// given kinds (none = every kind). Events are dropped rather than
// blocking the protocol if the subscriber lags behind its 64-event
// buffer. The channel closes when the node shuts down.
func (n *Node) Subscribe(kinds ...EventKind) <-chan Event {
	sub := &subscription{ch: make(chan Event, 64)}
	if len(kinds) > 0 {
		sub.kinds = make(map[EventKind]bool, len(kinds))
		for _, k := range kinds {
			sub.kinds[k] = true
		}
	}
	n.subMu.Lock()
	defer n.subMu.Unlock()
	if n.chansDone {
		close(sub.ch)
		return sub.ch
	}
	n.subs = append(n.subs, sub)
	return sub.ch
}

// inject feeds one inbound transport message to the engine.
func (n *Node) inject(m *Message) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	if !n.startDone {
		n.preStart = append(n.preStart, m)
		n.mu.Unlock()
		return
	}
	out, err := n.engine.Handle(time.Now(), m)
	n.mu.Unlock()
	if err != nil {
		// Engine rejections are soft: a malformed or mistimed message
		// from the network must not stop the node.
		n.cfg.onError(err)
		return
	}
	n.dispatch(out)
}

// dispatch consumes one engine output: deliveries and events to the
// application channels, envelopes to the transport, the timer armed.
func (n *Node) dispatch(out *core.Output) {
	if out == nil {
		return
	}
	for _, d := range out.Deliveries {
		n.pushMessage(d)
	}
	for _, e := range out.Events {
		n.pushEvent(e)
	}
	if len(out.Send) > 0 {
		n.mu.Lock()
		link, closed := n.link, n.closed
		n.mu.Unlock()
		if link != nil && !closed {
			for _, env := range out.Send {
				if err := link.Send(env.To, env.Msg); err != nil {
					n.cfg.onError(err)
				}
			}
		}
	}
	if !out.Timer.IsZero() {
		n.armTimer(out.Timer)
	}
}

func (n *Node) pushMessage(d RoundOutput) {
	n.subMu.Lock()
	defer n.subMu.Unlock()
	if n.chansDone {
		return
	}
	for {
		select {
		case n.msgs <- d:
			return
		default:
			// Full: drop the oldest so fresh rounds win.
			select {
			case <-n.msgs:
			default:
			}
		}
	}
}

func (n *Node) pushEvent(e Event) {
	n.subMu.Lock()
	defer n.subMu.Unlock()
	if n.chansDone {
		return
	}
	for _, sub := range n.subs {
		if sub.kinds != nil && !sub.kinds[e.Kind] {
			continue
		}
		select {
		case sub.ch <- e:
		default: // lagging subscriber: drop
		}
	}
}

// armTimer keeps the earliest requested engine wakeup: engines request
// timers liberally (window close, hard deadline) and ticks are
// idempotent, so only the soonest pending one matters.
func (n *Node) armTimer(at time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	if !n.timerAt.IsZero() && !at.Before(n.timerAt) {
		return // an earlier wakeup is already pending
	}
	d := time.Until(at)
	if d < 0 {
		d = 0
	}
	if n.timer != nil {
		n.timer.Stop()
	}
	n.timerAt = at
	n.timer = time.AfterFunc(d, n.tick)
}

func (n *Node) tick() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.timerAt = time.Time{}
	out, err := n.engine.Tick(time.Now())
	n.mu.Unlock()
	if err != nil {
		n.cfg.onError(err)
		return
	}
	n.dispatch(out)
}

// scheduleCert exposes the node's certified schedule to the beacon
// HTTP handler (nil until setup completes). Servers retain the
// certificate they assembled; clients the one they verified — either
// suffices for an external verifier to derive the session genesis.
func (n *Node) scheduleCert() *beacon.ScheduleCert {
	n.mu.Lock()
	defer n.mu.Unlock()
	var keys, sigs [][]byte
	if n.server != nil {
		keys, sigs = n.server.ScheduleCertificate()
	} else {
		keys, sigs = n.client.ScheduleCertificate()
	}
	if keys == nil {
		return nil
	}
	return &beacon.ScheduleCert{Keys: keys, Sigs: sigs}
}

// shutdown tears the node down exactly once: transport detached,
// timer stopped, application channels closed.
func (n *Node) shutdown() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	if n.timer != nil {
		n.timer.Stop()
	}
	link := n.link
	n.link = nil
	n.mu.Unlock()

	if link != nil {
		link.Close() // joins transport readers; late injects see closed
	}

	n.subMu.Lock()
	n.chansDone = true
	for _, sub := range n.subs {
		close(sub.ch)
	}
	close(n.msgs)
	n.subMu.Unlock()
}
