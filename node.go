package dissent

import (
	"context"
	"errors"
)

// Role distinguishes the two kinds of group members.
type Role int

// Roles.
const (
	// RoleServer is one of the group's anytrust servers.
	RoleServer Role = iota + 1
	// RoleClient is an anonymity-set member.
	RoleClient
)

func (r Role) String() string {
	switch r {
	case RoleServer:
		return "server"
	case RoleClient:
		return "client"
	default:
		return "unknown"
	}
}

// Node is one running group member: a protocol engine bound to a
// transport, with a context-based lifecycle and channel-based
// application APIs. Construct with NewServer or NewClient, then call
// Run; Send queues anonymous payloads (clients), Messages delivers the
// anonymous channel's cleartext, Subscribe observes protocol events.
// All methods are safe for concurrent use.
//
// A Node wraps exactly one Session — the per-group engine unit — and
// owns its lifecycle through Run(ctx). Processes that serve many
// groups at once use a Host instead, which runs many Sessions over one
// shared listener.
type Node struct {
	s *Session
}

// NewServer builds a server node. keys must hold both the identity
// keypair and the message-shuffle keypair (dissentcfg.LoadKeys reads
// both from a server key file).
func NewServer(def *Group, keys Keys, opts ...Option) (*Node, error) {
	if keys.Identity == nil {
		return nil, errors.New("dissent: server keys lack an identity keypair")
	}
	s, err := newMemberSession(RoleServer, def, keys, opts)
	if err != nil {
		return nil, err
	}
	return &Node{s: s}, nil
}

// NewClient builds a client node from an identity keypair.
func NewClient(def *Group, keys Keys, opts ...Option) (*Node, error) {
	if keys.Identity == nil {
		return nil, errors.New("dissent: client keys lack an identity keypair")
	}
	s, err := newMemberSession(RoleClient, def, keys, opts)
	if err != nil {
		return nil, err
	}
	return &Node{s: s}, nil
}

// Session returns the node's underlying per-group engine unit: the
// same handle a Host hands out from OpenSession.
func (n *Node) Session() *Session { return n.s }

// ID returns the node's self-certifying member ID.
func (n *Node) ID() NodeID { return n.s.ID() }

// Role returns whether this node is a server or a client.
func (n *Node) Role() Role { return n.s.Role() }

// Group returns the group definition the node belongs to.
func (n *Node) Group() *Group { return n.s.Group() }

// Index returns the node's index within its role's member list.
func (n *Node) Index() int { return n.s.Index() }

// Slot returns a client's anonymous slot index, or -1 before setup
// completes (and always -1 for servers); see Session.Slot.
func (n *Node) Slot() int { return n.s.Slot() }

// ScheduleEstablished reports whether the shuffle setup has completed
// and rounds can proceed; see Session.ScheduleEstablished.
func (n *Node) ScheduleEstablished() bool { return n.s.ScheduleEstablished() }

// Addr returns the transport-level address once Run has attached the
// node, or "".
func (n *Node) Addr() string { return n.s.Addr() }

// BeaconChain returns the node's verified randomness-beacon replica,
// or nil when the group policy disables the beacon. The chain is safe
// for concurrent reads while the node runs.
func (n *Node) BeaconChain() *BeaconChain { return n.s.BeaconChain() }

// Metrics returns a point-in-time snapshot of the node's protocol and
// traffic counters.
func (n *Node) Metrics() SessionMetrics { return n.s.Metrics() }

// Run attaches the node to its transport, starts the protocol engine,
// and serves until ctx is cancelled, then shuts down gracefully:
// transport closed, timers stopped, Messages and subscription channels
// closed. It returns nil after a clean ctx-driven shutdown and an
// error if startup fails. Run may be called once.
func (n *Node) Run(ctx context.Context) error {
	s := n.s
	tr := s.cfg.transport
	if tr == nil {
		if s.cfg.roster == nil {
			s.mu.Lock()
			alreadyStarted := s.started || s.closed
			s.mu.Unlock()
			if alreadyStarted {
				return errors.New("dissent: Run called twice")
			}
			s.Close()
			return errors.New("dissent: no transport configured (use WithTransport, or WithListenAddr+WithRoster for TCP)")
		}
		tr = TCP(s.cfg.listenAddr, s.cfg.roster)
	}
	// The built-in transports understand session tags; a custom
	// Transport falls back to the untagged single-session dial.
	dial := func(recv func(*Message), onError func(error)) (Link, error) {
		if sd, ok := tr.(sessionDialer); ok {
			return sd.dialSession(s.sid, s.id, recv, onError)
		}
		return tr.Dial(s.id, recv, onError)
	}
	if err := s.open(dial); err != nil {
		return err
	}
	// The session can also die out-of-band (Session.Close via the
	// Session() handle); Run must not keep blocking on a dead engine.
	select {
	case <-ctx.Done():
	case <-s.Done():
	}
	s.Close()
	return nil
}

// Send queues an application payload for anonymous transmission in
// the client's pseudonym slot. Payloads larger than the slot are
// fragmented across rounds; reassembly (and any framing) is the
// application's concern. Queueing succeeds before the schedule is
// established — the payload rides the first available round.
func (n *Node) Send(ctx context.Context, data []byte) error {
	if n.s.client == nil {
		return errors.New("dissent: Send on a server node (servers relay; only clients originate)")
	}
	return n.s.Send(ctx, data)
}

// Messages returns the channel of decoded anonymous messages — every
// certified round's slot payloads, at servers and clients alike. The
// channel closes when the node shuts down. If the application does not
// drain it, the oldest undelivered outputs are dropped (see
// WithMessageBuffer).
func (n *Node) Messages() <-chan RoundOutput { return n.s.Messages() }

// Subscribe returns a channel of protocol events, filtered to the
// given kinds (none = every kind). Events are dropped rather than
// blocking the protocol if the subscriber lags behind its 64-event
// buffer. The channel closes when the node shuts down.
func (n *Node) Subscribe(kinds ...EventKind) <-chan Event { return n.s.Subscribe(kinds...) }
