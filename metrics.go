package dissent

import (
	"expvar"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dissent/internal/core"
	"dissent/internal/transport"
)

// SessionMetrics is a point-in-time snapshot of one session's protocol
// and traffic counters. Byte counts use the protocol's approximate
// on-the-wire message size (header + body + signature); they track
// real socket traffic closely but are not an exact octet count.
type SessionMetrics struct {
	// Session is the session's identifier (the group ID).
	Session SessionID `json:"session"`
	// Group is the group definition's human-readable name.
	Group string `json:"group"`
	// Role is "server" or "client".
	Role string `json:"role"`
	// Uptime is the time since the session attached to its fabric.
	Uptime time.Duration `json:"uptime_ns"`
	// MessagesIn/MessagesOut count protocol messages handled/sent.
	MessagesIn  uint64 `json:"messages_in"`
	MessagesOut uint64 `json:"messages_out"`
	// BytesIn/BytesOut count approximate wire bytes handled/sent.
	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`
	// RoundsCompleted counts certified DC-net rounds observed;
	// RoundsFailed counts hard-timeout rounds.
	RoundsCompleted uint64 `json:"rounds_completed"`
	RoundsFailed    uint64 `json:"rounds_failed"`
	// LastRound is the most recently certified round number.
	LastRound uint64 `json:"last_round"`
	// RoundsPerSec is RoundsCompleted over the session's uptime.
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// WindowsClosed counts submission-window closures at servers, and
	// WindowTime their cumulative duration (from each round's start —
	// the previous certification — to its window close): the paper's
	// "client submission" share of round time.
	WindowsClosed uint64        `json:"windows_closed"`
	WindowTime    time.Duration `json:"window_time_ns"`
	// PadComputeTime is cumulative critical-path DC-net pad expansion
	// time (server: residual pad work at window close; client:
	// ciphertext build at submit). CombineTime is the server's
	// cumulative combine latency (ciphertext fold + share assembly).
	// PadPrefetchHits/Misses count rounds served from (resp. without) a
	// prefetched pad. Together they make the PR 5 data-plane speedups
	// observable from `dissentd -metrics`.
	PadComputeTime    time.Duration `json:"pad_compute_ns"`
	CombineTime       time.Duration `json:"combine_ns"`
	PadPrefetchHits   uint64        `json:"pad_prefetch_hits"`
	PadPrefetchMisses uint64        `json:"pad_prefetch_misses"`
	// PipelineDepth is the configured round pipeline depth (see
	// WithPipelineDepth); RoundsInFlight is the current occupancy —
	// rounds between window open and retirement (servers; clients report
	// their submitted-but-uncertified count).
	PipelineDepth  int `json:"pipeline_depth"`
	RoundsInFlight int `json:"rounds_in_flight"`
	// ChurnJoins/ChurnExpels count members admitted and removed by
	// certified roster updates this session observed; RosterVersion is
	// the current certified roster version (see PR 4's epoch churn).
	ChurnJoins    uint64 `json:"churn_joins"`
	ChurnExpels   uint64 `json:"churn_expels"`
	RosterVersion uint64 `json:"roster_version"`
	// StateRestores counts live-session resumes from the durable state
	// store (servers); ReplicaResyncs counts schedule-replica
	// replacements from a certified snapshot (clients).
	StateRestores  uint64 `json:"state_restores"`
	ReplicaResyncs uint64 `json:"replica_resyncs"`
	// BlameRounds counts accusation shuffles this session observed
	// opening (blame is a round-schedule interruption, so this is also
	// the count of rounds sacrificed to tracing).
	BlameRounds uint64 `json:"blame_rounds"`
	// Misbehavior counts attributed protocol offenses by kind (the
	// EventMisbehavior detail prefix: bad-signature, malformed,
	// equivocation, bad-certificate, withholding, replay, flood,
	// escalated). Empty on sessions that never observed an offense.
	Misbehavior map[string]uint64 `json:"misbehavior_observed,omitempty"`
}

// HostMetrics aggregates a Host's sessions, including totals carried
// over from sessions that have since closed.
type HostMetrics struct {
	// Addr is the shared listener's address ("sim" on a SimNet host).
	Addr string `json:"addr"`
	// Uptime is the time since the host was created.
	Uptime time.Duration `json:"uptime_ns"`
	// Sessions is the number of currently open sessions;
	// SessionsOpened/SessionsClosed are lifetime counts.
	Sessions       int    `json:"sessions"`
	SessionsOpened uint64 `json:"sessions_opened"`
	SessionsClosed uint64 `json:"sessions_closed"`
	// Aggregated traffic and round counters (open + closed sessions).
	MessagesIn      uint64 `json:"messages_in"`
	MessagesOut     uint64 `json:"messages_out"`
	BytesIn         uint64 `json:"bytes_in"`
	BytesOut        uint64 `json:"bytes_out"`
	RoundsCompleted uint64 `json:"rounds_completed"`
	RoundsFailed    uint64 `json:"rounds_failed"`
	// PerSession holds a snapshot of every currently open session.
	PerSession []SessionMetrics `json:"per_session"`
	// Transport reports the TCP fabric's connection health: dial
	// failures, dropped frames, and per-peer state. Nil on SimNet hosts
	// (the in-process fabric has no connections to fail).
	Transport *TransportMetrics `json:"transport,omitempty"`
}

// TransportMetrics is the TCP fabric's connection-health snapshot, the
// SDK face of the mesh transport's internal accounting. Harness runs
// use it to attribute fault-window degradation to the transport layer.
type TransportMetrics struct {
	// DialFailures counts failed outbound dial attempts (retries of a
	// backing-off dial each count).
	DialFailures uint64 `json:"dial_failures"`
	// FramesDropped counts outbound protocol frames lost to dial or
	// write failures.
	FramesDropped uint64 `json:"frames_dropped"`
	// Peers holds per-address connection health, sorted by address.
	Peers []TransportPeer `json:"peers,omitempty"`
}

// TransportPeer is one outbound peer's connection health.
type TransportPeer struct {
	// Addr is the peer's dial address.
	Addr string `json:"addr"`
	// State is "dialing", "connected", or "failed".
	State string `json:"state"`
	// Dials counts connection attempts, including retries.
	Dials uint64 `json:"dials"`
	// LastError is the most recent dial or write error, if any.
	LastError string `json:"last_error,omitempty"`
}

// transportMetrics converts the internal mesh snapshot.
func transportMetrics(s transport.Stats) *TransportMetrics {
	tm := &TransportMetrics{
		DialFailures:  s.DialFailures,
		FramesDropped: s.FramesDropped,
	}
	for _, p := range s.Peers {
		tm.Peers = append(tm.Peers, TransportPeer{
			Addr: p.Addr, State: p.State, Dials: p.Dials, LastError: p.LastError,
		})
	}
	return tm
}

// counters is the live, lock-free counter set behind SessionMetrics.
type counters struct {
	openedAt atomic.Int64 // unix-nanos; 0 until the session opens

	msgsIn, msgsOut   atomic.Uint64
	bytesIn, bytesOut atomic.Uint64

	rounds, failed atomic.Uint64
	lastRound      atomic.Uint64

	windows     atomic.Uint64
	windowNanos atomic.Int64
	phaseStart  atomic.Int64 // unix-nanos of the current round's start

	joins, expels atomic.Uint64

	restores, resyncs atomic.Uint64

	blameRounds atomic.Uint64

	// misbehavior counts attributed offenses by kind. The map is
	// mutex-guarded (not atomic like its siblings): writes come one
	// event at a time off the engine and reads are scrapes.
	misMu       sync.Mutex
	misbehavior map[string]uint64
}

// misbehaviorKind extracts the kind prefix from an EventMisbehavior
// detail ("<kind>: <cause>").
func misbehaviorKind(detail string) string {
	if i := strings.IndexByte(detail, ':'); i > 0 {
		return detail[:i]
	}
	return detail
}

func (c *counters) observeMisbehavior(kind string) {
	c.misMu.Lock()
	if c.misbehavior == nil {
		c.misbehavior = make(map[string]uint64)
	}
	c.misbehavior[kind]++
	c.misMu.Unlock()
}

// misbehaviorSnapshot copies the per-kind offense counts (nil when
// none were observed).
func (c *counters) misbehaviorSnapshot() map[string]uint64 {
	c.misMu.Lock()
	defer c.misMu.Unlock()
	if len(c.misbehavior) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(c.misbehavior))
	for k, v := range c.misbehavior {
		out[k] = v
	}
	return out
}

// observe folds one engine event into the counters.
func (c *counters) observe(e Event) {
	now := time.Now().UnixNano()
	switch e.Kind {
	case core.EventScheduleReady:
		c.phaseStart.Store(now)
	case core.EventWindowClosed:
		c.windows.Add(1)
		if start := c.phaseStart.Load(); start != 0 {
			c.windowNanos.Add(now - start)
		}
	case core.EventRoundComplete:
		c.rounds.Add(1)
		c.lastRound.Store(e.Round)
		c.phaseStart.Store(now)
	case core.EventRoundFailed:
		c.failed.Add(1)
		c.phaseStart.Store(now)
	case core.EventMemberJoined:
		c.joins.Add(1)
	case core.EventMemberExpelled:
		c.expels.Add(1)
	case core.EventStateRestored:
		c.restores.Add(1)
	case core.EventReplicaResynced:
		c.resyncs.Add(1)
	case core.EventBlameStarted:
		c.blameRounds.Add(1)
	case core.EventMisbehavior:
		c.observeMisbehavior(misbehaviorKind(e.Detail))
	}
}

// Metrics returns a point-in-time snapshot of the session's counters.
func (s *Session) Metrics() SessionMetrics {
	m := SessionMetrics{
		Session:         s.sid,
		Group:           s.def.Name,
		Role:            s.role.String(),
		MessagesIn:      s.stats.msgsIn.Load(),
		MessagesOut:     s.stats.msgsOut.Load(),
		BytesIn:         s.stats.bytesIn.Load(),
		BytesOut:        s.stats.bytesOut.Load(),
		RoundsCompleted: s.stats.rounds.Load(),
		RoundsFailed:    s.stats.failed.Load(),
		LastRound:       s.stats.lastRound.Load(),
		WindowsClosed:   s.stats.windows.Load(),
		WindowTime:      time.Duration(s.stats.windowNanos.Load()),
		ChurnJoins:      s.stats.joins.Load(),
		ChurnExpels:     s.stats.expels.Load(),
		RosterVersion:   s.RosterVersion(),
		StateRestores:   s.stats.restores.Load(),
		ReplicaResyncs:  s.stats.resyncs.Load(),
		BlameRounds:     s.stats.blameRounds.Load(),
		Misbehavior:     s.stats.misbehaviorSnapshot(),
	}
	m.PipelineDepth = s.cfg.pipelineDepth
	if m.PipelineDepth < 1 {
		m.PipelineDepth = 1
	}
	if pr, ok := s.engine.(interface{ PerfStats() core.PerfStats }); ok {
		ps := pr.PerfStats()
		m.PadComputeTime = ps.PadCompute
		m.CombineTime = ps.Combine
		m.PadPrefetchHits = ps.PrefetchHits
		m.PadPrefetchMisses = ps.PrefetchMisses
		m.RoundsInFlight = ps.RoundsInFlight
	}
	if opened := s.stats.openedAt.Load(); opened != 0 {
		m.Uptime = time.Since(time.Unix(0, opened))
		if secs := m.Uptime.Seconds(); secs > 0 {
			m.RoundsPerSec = float64(m.RoundsCompleted) / secs
		}
	}
	return m
}

// TransportMetrics returns the session's transport-health snapshot
// when it is attached to the built-in TCP fabric, or nil (SimNet and
// custom transports report nothing). Sessions hosted on one Host share
// its mesh and therefore report the same snapshot.
func (s *Session) TransportMetrics() *TransportMetrics {
	s.mu.Lock()
	link := s.link
	s.mu.Unlock()
	if ms, ok := link.(meshStatser); ok {
		return transportMetrics(ms.meshStats())
	}
	return nil
}

// MetricsVar wraps the session's metrics as an expvar.Var for
// publication under a caller-chosen name:
//
//	expvar.Publish("dissent.session", sess.MetricsVar())
func (s *Session) MetricsVar() expvar.Var {
	return expvar.Func(func() any { return s.Metrics() })
}
