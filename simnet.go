package dissent

import (
	"time"

	"dissent/internal/simnet"
)

// SimNet is the in-process transport: a real-time message fabric with
// an optional latency model, built on the same hub the discrete-event
// simulator package provides. A group of Nodes sharing one SimNet runs
// the full production protocol — signed messages, verifiable shuffle,
// certified rounds — without sockets, making it the medium for tests,
// examples, and embedded single-process deployments.
type SimNet struct {
	hub *simnet.Hub
}

// NewSimNet creates an empty in-process network.
func NewSimNet() *SimNet {
	return &SimNet{hub: simnet.NewHub()}
}

// SetLatency installs a one-way propagation delay model (for example,
// 10 ms server–server and 50 ms client–server to mimic the paper's
// DeterLab topology). Call before any node runs; fn must be a pure
// function of the endpoint pair so per-pair delivery order is
// preserved.
func (s *SimNet) SetLatency(fn func(from, to NodeID) time.Duration) {
	s.hub.Latency = fn
}

// Close tears the network down, detaching every node.
func (s *SimNet) Close() { s.hub.Close() }

// Dial implements Transport.
func (s *SimNet) Dial(self NodeID, recv func(*Message), onError func(error)) (Link, error) {
	if err := s.hub.Attach(self, func(p any) { recv(p.(*Message)) }); err != nil {
		return nil, err
	}
	return &simLink{net: s, self: self}, nil
}

type simLink struct {
	net  *SimNet
	self NodeID
}

func (l *simLink) Send(to NodeID, m *Message) error {
	return l.net.hub.Send(l.self, to, m)
}

func (l *simLink) Addr() string { return "sim:" + l.self.String() }

func (l *simLink) Close() error {
	l.net.hub.Detach(l.self)
	return nil
}
