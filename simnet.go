package dissent

import (
	"time"

	"dissent/internal/simnet"
)

// SimNet is the in-process transport: a real-time message fabric with
// an optional latency model, built on the same hub the discrete-event
// simulator package provides. A group of Nodes sharing one SimNet runs
// the full production protocol — signed messages, verifiable shuffle,
// certified rounds — without sockets, making it the medium for tests,
// examples, and embedded single-process deployments.
//
// Like the TCP fabric, one SimNet carries many concurrent groups: the
// hub routes by (session, member), so a Host's sessions and standalone
// Nodes of different groups share one SimNet without their messages
// ever crossing sessions.
type SimNet struct {
	hub *simnet.Hub
}

// NewSimNet creates an empty in-process network.
func NewSimNet() *SimNet {
	return &SimNet{hub: simnet.NewHub()}
}

// SetLatency installs a one-way propagation delay model (for example,
// 10 ms server–server and 50 ms client–server to mimic the paper's
// DeterLab topology). Call before any node runs; fn must be a pure
// function of the endpoint pair so per-pair delivery order is
// preserved.
func (s *SimNet) SetLatency(fn func(from, to NodeID) time.Duration) {
	s.hub.Latency = fn
}

// FaultSpec models an impaired link for fault-injection tests: extra
// latency, uniform jitter on top, a probabilistic drop rate, and a
// hard partition until a deadline. Jitter never reorders a directed
// pair's stream — delivery stays TCP-like FIFO.
type FaultSpec = simnet.FaultSpec

// SetLinkFault installs a fault model on the (undirected) link between
// two members, applying in both directions. Draws come from a seeded
// deterministic RNG (SetFaultSeed), so failing tests replay exactly.
func (s *SimNet) SetLinkFault(a, b NodeID, spec FaultSpec) {
	s.hub.SetLinkFault(a, b, spec)
}

// ClearLinkFault removes a link's fault model.
func (s *SimNet) ClearLinkFault(a, b NodeID) { s.hub.ClearLinkFault(a, b) }

// ScheduleLinkFault arms a timed fault window on the link between two
// members: after `after` elapses the spec installs (both directions),
// and `duration` later it clears again (a zero duration leaves the
// fault until ClearLinkFault). Scenario harnesses pre-program a run's
// whole fault schedule this way before the workload starts; windows
// still pending when the network closes are cancelled.
func (s *SimNet) ScheduleLinkFault(a, b NodeID, spec FaultSpec, after, duration time.Duration) {
	s.hub.ScheduleLinkFault(a, b, spec, after, duration)
}

// SetFaultSeed seeds the fault-injection RNG (default 1).
func (s *SimNet) SetFaultSeed(seed int64) { s.hub.SetFaultSeed(seed) }

// Close tears the network down, detaching every node of every session.
func (s *SimNet) Close() { s.hub.Close() }

// Dial implements Transport (the untagged single-session form; the
// SDK's Node actually attaches through the session-aware dial).
func (s *SimNet) Dial(self NodeID, recv func(*Message), onError func(error)) (Link, error) {
	return s.dialSession(SessionID{}, self, recv, onError)
}

func (s *SimNet) dialSession(sid SessionID, self NodeID, recv func(*Message), onError func(error)) (Link, error) {
	if err := s.hub.AttachSession([32]byte(sid), self, func(p any) { recv(p.(*Message)) }); err != nil {
		return nil, err
	}
	return &simLink{net: s, self: self, sid: sid}, nil
}

type simLink struct {
	net  *SimNet
	self NodeID
	sid  SessionID
}

func (l *simLink) Send(to NodeID, m *Message) error {
	return l.net.hub.SendSession([32]byte(l.sid), l.self, to, m)
}

func (l *simLink) Addr() string { return "sim:" + l.self.String() }

func (l *simLink) Close() error {
	l.net.hub.DetachSession([32]byte(l.sid), l.self)
	return nil
}
