package dissent

import (
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"dissent/internal/transport"
)

// Host runs many concurrent Dissent sessions — one per group — in a
// single process over one shared message fabric. The fabric (a TCP
// listener carrying session-tagged frames, or an in-process SimNet
// hub) is mechanism shared by every session; each session keeps its
// own policy: engine, timers, beacon chain, schedule certificate, and
// application channels. Sessions are opened and torn down
// independently with OpenSession and CloseSession; Close shuts the
// whole host down. All methods are safe for concurrent use.
type Host struct {
	cfg  hostConfig
	log  *slog.Logger    // host logger, host-addr attr attached
	mesh *transport.Mesh // TCP fabric; nil when sim is set
	sim  *SimNet

	mu       sync.Mutex
	sessions map[SessionID]*Session
	closed   bool
	opened   uint64
	closedN  uint64
	retired  retiredTotals
	openedAt time.Time
}

// retiredTotals carries closed sessions' counters so host aggregates
// stay cumulative.
type retiredTotals struct {
	msgsIn, msgsOut   uint64
	bytesIn, bytesOut uint64
	rounds, failed    uint64
}

// HostOption tunes Host construction.
type HostOption func(*hostConfig)

type hostConfig struct {
	listenAddr string
	sim        *SimNet
	onError    func(error)
	onErrorSet bool // user-supplied handler: sessions inherit it too
	logger     *slog.Logger
}

// WithHostListenAddr sets the shared TCP listen address every session
// runs behind. Default ":0". Ignored when WithHostSimNet is given.
func WithHostListenAddr(addr string) HostOption {
	return func(c *hostConfig) { c.listenAddr = addr }
}

// WithHostSimNet runs the host's sessions over an in-process SimNet
// instead of TCP — many groups, one hub, no sockets. The caller
// retains ownership of the SimNet (it is not closed by Host.Close).
func WithHostSimNet(net *SimNet) HostOption {
	return func(c *hostConfig) { c.sim = net }
}

// WithHostErrorHandler observes soft errors from the shared fabric —
// read failures, frames for unbound sessions — and is the default
// error handler for sessions opened without WithErrorHandler. When
// omitted, fabric errors log at Warn through the host's structured
// logger (with the host's address attached), and each session's soft
// errors log through its own session logger.
func WithHostErrorHandler(fn func(error)) HostOption {
	return func(c *hostConfig) { c.onError, c.onErrorSet = fn, true }
}

// WithHostLogger routes the host's structured logs — fabric soft
// errors, and every hosted session's engine logs unless a session sets
// its own WithLogger — through the given logger. Default
// slog.Default().
func WithHostLogger(l *slog.Logger) HostOption {
	return func(c *hostConfig) { c.logger = l }
}

// NewHost creates a host and binds its shared fabric: a TCP listener
// on the configured address, or the given SimNet.
func NewHost(opts ...HostOption) (*Host, error) {
	cfg := hostConfig{listenAddr: ":0"}
	for _, o := range opts {
		o(&cfg)
	}
	base := cfg.logger
	if base == nil {
		base = slog.Default()
	}
	h := &Host{
		cfg:      cfg,
		log:      base,
		sessions: make(map[SessionID]*Session),
		openedAt: time.Now(),
	}
	if cfg.onError == nil {
		// Resolved through h.log so the handler picks up the host-addr
		// attribute attached below, once the fabric is bound.
		h.cfg.onError = func(err error) { h.log.Warn("host error", "err", err) }
	}
	if cfg.sim != nil {
		h.sim = cfg.sim
		h.log = base.With("host", h.Addr())
		return h, nil
	}
	mesh, err := transport.NewMesh(cfg.listenAddr, h.cfg.onError)
	if err != nil {
		return nil, err
	}
	h.mesh = mesh
	h.log = base.With("host", h.Addr())
	return h, nil
}

// Addr returns the shared listener's address ("sim" on a SimNet host).
func (h *Host) Addr() string {
	if h.mesh != nil {
		return h.mesh.Addr()
	}
	return "sim"
}

// OpenSession starts one group membership on the host's shared fabric
// and returns its Session handle, already attached and running. The
// member's role is located by its identity key within the definition
// (servers need the message-shuffle key too, exactly as NewServer).
// Over TCP, the session requires WithRoster — remote peers of this
// group dial the host's shared address; WithTransport and
// WithListenAddr do not apply to host sessions. One host runs at most
// one membership per group.
func (h *Host) OpenSession(def *Group, keys Keys, opts ...Option) (*Session, error) {
	role, err := memberRole(def, keys)
	if err != nil {
		return nil, err
	}
	// Sessions inherit the host's logger (host-addr attr included) and,
	// when the embedder installed one, its error handler. Prepended, so
	// per-session WithLogger/WithErrorHandler options still win; with no
	// handler anywhere, session errors log through the session logger.
	inherited := []Option{WithLogger(h.log)}
	if h.cfg.onErrorSet {
		inherited = append(inherited, WithErrorHandler(h.cfg.onError))
	}
	opts = append(inherited, opts...)
	s, err := newMemberSession(role, def, keys, opts)
	if err != nil {
		return nil, err
	}
	if s.cfg.transport != nil {
		return nil, errors.New("dissent: WithTransport does not apply to host sessions (the host supplies the fabric)")
	}
	if s.cfg.listenAddrSet {
		return nil, errors.New("dissent: WithListenAddr does not apply to host sessions (they share the host's listener)")
	}
	if h.mesh != nil && s.cfg.roster == nil {
		return nil, errors.New("dissent: OpenSession over TCP requires WithRoster")
	}

	sid := s.sid
	s.onClose = h.sessionClosed
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errors.New("dissent: host closed")
	}
	if _, dup := h.sessions[sid]; dup {
		h.mu.Unlock()
		return nil, fmt.Errorf("dissent: session %s already open on this host", sid)
	}
	h.sessions[sid] = s
	h.opened++
	h.mu.Unlock()

	var dial dialFunc
	if h.sim != nil {
		dial = func(recv func(*Message), onError func(error)) (Link, error) {
			return h.sim.dialSession(sid, s.id, recv, onError)
		}
	} else {
		dial = func(recv func(*Message), onError func(error)) (Link, error) {
			tsid := transport.SessionID(sid)
			if err := h.mesh.Bind(tsid, s.cfg.roster, recv); err != nil {
				return nil, err
			}
			return meshSessionLink{mesh: h.mesh, sid: tsid}, nil
		}
	}
	if err := s.open(dial); err != nil {
		// open shut the session down; sessionClosed already
		// unregistered it.
		return nil, err
	}
	return s, nil
}

// CloseSession tears down the session running the given group,
// independently of every other session on the host.
func (h *Host) CloseSession(sid SessionID) error {
	h.mu.Lock()
	s := h.sessions[sid]
	h.mu.Unlock()
	if s == nil {
		return fmt.Errorf("dissent: no open session %s", sid)
	}
	return s.Close()
}

// Session returns the open session for a group, or nil.
func (h *Host) Session(sid SessionID) *Session {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sessions[sid]
}

// Sessions returns the currently open sessions.
func (h *Host) Sessions() []*Session {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		out = append(out, s)
	}
	return out
}

// Admit pre-approves an identity key for admission on the session
// running the given group; see Session.Admit.
func (h *Host) Admit(sid SessionID, encodedPub []byte) error {
	s := h.Session(sid)
	if s == nil {
		return fmt.Errorf("dissent: no open session %s", sid)
	}
	return s.Admit(encodedPub)
}

// Expel queues a client's removal at the next epoch boundary on the
// session running the given group; see Session.Expel.
func (h *Host) Expel(sid SessionID, id NodeID) error {
	s := h.Session(sid)
	if s == nil {
		return fmt.Errorf("dissent: no open session %s", sid)
	}
	return s.Expel(id)
}

// sessionClosed is the Session.onClose hook: unregister and fold the
// session's final counters into the host's cumulative totals.
func (h *Host) sessionClosed(s *Session) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sessions[s.sid] != s {
		return
	}
	delete(h.sessions, s.sid)
	h.closedN++
	h.retired.msgsIn += s.stats.msgsIn.Load()
	h.retired.msgsOut += s.stats.msgsOut.Load()
	h.retired.bytesIn += s.stats.bytesIn.Load()
	h.retired.bytesOut += s.stats.bytesOut.Load()
	h.retired.rounds += s.stats.rounds.Load()
	h.retired.failed += s.stats.failed.Load()
}

// Close shuts the host down: every session torn down, then the shared
// TCP listener closed. A SimNet fabric is left to its owner.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	open := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		open = append(open, s)
	}
	h.mu.Unlock()
	for _, s := range open {
		s.Close()
	}
	if h.mesh != nil {
		return h.mesh.Close()
	}
	return nil
}

// Metrics returns a point-in-time snapshot aggregating every open
// session plus the cumulative totals of sessions already closed.
func (h *Host) Metrics() HostMetrics {
	h.mu.Lock()
	open := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		open = append(open, s)
	}
	m := HostMetrics{
		Addr:            h.Addr(),
		Uptime:          time.Since(h.openedAt),
		Sessions:        len(open),
		SessionsOpened:  h.opened,
		SessionsClosed:  h.closedN,
		MessagesIn:      h.retired.msgsIn,
		MessagesOut:     h.retired.msgsOut,
		BytesIn:         h.retired.bytesIn,
		BytesOut:        h.retired.bytesOut,
		RoundsCompleted: h.retired.rounds,
		RoundsFailed:    h.retired.failed,
	}
	h.mu.Unlock()
	for _, s := range open {
		sm := s.Metrics()
		m.MessagesIn += sm.MessagesIn
		m.MessagesOut += sm.MessagesOut
		m.BytesIn += sm.BytesIn
		m.BytesOut += sm.BytesOut
		m.RoundsCompleted += sm.RoundsCompleted
		m.RoundsFailed += sm.RoundsFailed
		m.PerSession = append(m.PerSession, sm)
	}
	if h.mesh != nil {
		m.Transport = transportMetrics(h.mesh.Stats())
	}
	return m
}

// MetricsVar wraps the host's metrics as an expvar.Var for publication
// under a caller-chosen name:
//
//	expvar.Publish("dissent.host", host.MetricsVar())
func (h *Host) MetricsVar() expvar.Var {
	return expvar.Func(func() any { return h.Metrics() })
}

// memberRole locates the identity key within the definition: a match
// in the server list makes the session a server, in the client list a
// client.
func memberRole(def *Group, keys Keys) (Role, error) {
	if keys.Identity == nil {
		return 0, errors.New("dissent: keys lack an identity keypair")
	}
	g := def.Group()
	want := string(g.Encode(keys.Identity.Public))
	for _, m := range def.Servers {
		if string(g.Encode(m.PubKey)) == want {
			return RoleServer, nil
		}
	}
	for _, m := range def.Clients {
		if string(g.Encode(m.PubKey)) == want {
			return RoleClient, nil
		}
	}
	return 0, errors.New("dissent: keys do not belong to any member of the group")
}
