package dissent_test

// SDK integration tests: complete groups running to certified DC-net
// rounds through the public dissent.Node API alone — over the
// in-process SimNet transport and over real loopback TCP — plus the
// beacon session-binding verifier path and lifecycle semantics.

import (
	"context"
	"net"
	"testing"
	"time"

	"dissent"
)

// testPolicy returns a policy sized for fast real-time test runs.
func testPolicy(mutate func(*dissent.Policy)) dissent.Policy {
	p := dissent.DefaultPolicy()
	p.MessageGroup = "modp-512-test"
	p.Shadows = 4
	p.WindowMin = 10 * time.Millisecond
	p.HardTimeout = 30 * time.Second
	p.DefaultOpenLen = 64
	p.BeaconEpochRounds = 0
	if mutate != nil {
		mutate(&p)
	}
	return p
}

// buildGroup generates keys and a definition.
func buildGroup(t *testing.T, servers, clients int, policy dissent.Policy) ([]dissent.Keys, []dissent.Keys, *dissent.Group) {
	t.Helper()
	sKeys := make([]dissent.Keys, servers)
	cKeys := make([]dissent.Keys, clients)
	var err error
	for i := range sKeys {
		if sKeys[i], err = dissent.GenerateServerKeys(policy); err != nil {
			t.Fatal(err)
		}
	}
	for i := range cKeys {
		if cKeys[i], err = dissent.GenerateClientKeys(); err != nil {
			t.Fatal(err)
		}
	}
	grp, err := dissent.NewGroup("sdk-test", sKeys, cKeys, policy)
	if err != nil {
		t.Fatal(err)
	}
	return sKeys, cKeys, grp
}

// sdkGroup is a running set of Nodes plus lifecycle bookkeeping.
type sdkGroup struct {
	servers []*dissent.Node
	clients []*dissent.Node
	cancel  context.CancelFunc
	runErr  chan error
	n       int
}

func (g *sdkGroup) all() []*dissent.Node {
	return append(append([]*dissent.Node(nil), g.servers...), g.clients...)
}

// stop cancels the group and waits for every Run to return.
func (g *sdkGroup) stop(t *testing.T) {
	t.Helper()
	g.cancel()
	for i := 0; i < g.n; i++ {
		select {
		case err := <-g.runErr:
			if err != nil {
				t.Errorf("Run returned %v", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("Run did not return after cancel")
		}
	}
}

// reservePort grabs a free loopback port.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startGroup constructs and runs every node. extraOpts returns
// per-node options: the transport wiring for this run, plus anything
// the test adds for specific nodes.
func startGroup(t *testing.T, grp *dissent.Group, sKeys, cKeys []dissent.Keys,
	extraOpts func(role dissent.Role, i int) []dissent.Option) *sdkGroup {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	g := &sdkGroup{cancel: cancel, n: len(sKeys) + len(cKeys)}
	g.runErr = make(chan error, g.n)
	for i, k := range sKeys {
		node, err := dissent.NewServer(grp, k, extraOpts(dissent.RoleServer, i)...)
		if err != nil {
			t.Fatal(err)
		}
		g.servers = append(g.servers, node)
	}
	for i, k := range cKeys {
		node, err := dissent.NewClient(grp, k, extraOpts(dissent.RoleClient, i)...)
		if err != nil {
			t.Fatal(err)
		}
		g.clients = append(g.clients, node)
	}
	for _, node := range g.all() {
		node := node
		go func() { g.runErr <- node.Run(ctx) }()
	}
	return g
}

// driveGroupToCertifiedRound is the acceptance scenario: a 3-server,
// 8-client group reaches a certified round and delivers an anonymous
// message end to end, through the public API alone.
func driveGroupToCertifiedRound(t *testing.T, grp *dissent.Group, sKeys, cKeys []dissent.Keys,
	extraOpts func(role dissent.Role, i int) []dissent.Option) {
	t.Helper()
	g := startGroup(t, grp, sKeys, cKeys, extraOpts)
	defer g.stop(t)

	rounds := g.servers[0].Subscribe(dissent.EventRoundComplete)
	ready := g.clients[2].Subscribe(dissent.EventScheduleReady)

	const payload = "certified anonymous payload"
	if err := g.clients[2].Send(context.Background(), []byte(payload)); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(60 * time.Second)
	select {
	case _, ok := <-ready:
		if !ok {
			t.Fatal("schedule subscription closed early")
		}
	case <-deadline:
		t.Fatal("schedule not established after 60s")
	}
	select {
	case e, ok := <-rounds:
		if !ok {
			t.Fatal("round subscription closed early")
		}
		if e.Kind != dissent.EventRoundComplete {
			t.Fatalf("subscription filter leaked a %v event", e.Kind)
		}
	case <-deadline:
		t.Fatal("no certified round after 60s")
	}

	// The anonymous payload surfaces at a server and at a client that
	// did not send it — everyone observes the channel's cleartext.
	for _, node := range []*dissent.Node{g.servers[1], g.clients[5]} {
		found := false
		for !found {
			select {
			case m, ok := <-node.Messages():
				if !ok {
					t.Fatal("message channel closed early")
				}
				if string(m.Data) == payload {
					found = true
				}
			case <-deadline:
				t.Fatalf("payload did not reach %v %d", node.Role(), node.Index())
			}
		}
	}

	if err := g.servers[0].Send(context.Background(), []byte("x")); err == nil {
		t.Error("Send on a server node succeeded")
	}
}

// TestSDKGroupOverSimNet runs the acceptance group over the in-process
// transport.
func TestSDKGroupOverSimNet(t *testing.T) {
	policy := testPolicy(nil)
	sKeys, cKeys, grp := buildGroup(t, 3, 8, policy)
	net := dissent.NewSimNet()
	defer net.Close()
	net.SetLatency(func(from, to dissent.NodeID) time.Duration { return time.Millisecond })
	driveGroupToCertifiedRound(t, grp, sKeys, cKeys, func(dissent.Role, int) []dissent.Option {
		return []dissent.Option{dissent.WithTransport(net)}
	})
}

// TestSDKGroupOverTCP runs the same acceptance group over real
// loopback TCP via the default transport (listen addr + roster).
func TestSDKGroupOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time TCP test")
	}
	policy := testPolicy(func(p *dissent.Policy) { p.WindowMin = 20 * time.Millisecond })
	sKeys, cKeys, grp := buildGroup(t, 3, 8, policy)

	// Reserve an address per member (in one batch, so no duplicates);
	// the shared roster is completed before any node runs (nodes dial
	// lazily at first send).
	roster := dissent.Roster{}
	ports := reservePorts(t, len(sKeys)+len(cKeys))
	sAddrs := ports[:len(sKeys)]
	cAddrs := ports[len(sKeys):]
	opts := func(role dissent.Role, i int) []dissent.Option {
		addr := sAddrs
		if role == dissent.RoleClient {
			addr = cAddrs
		}
		return []dissent.Option{dissent.WithListenAddr(addr[i]), dissent.WithRoster(roster)}
	}
	for i, k := range sKeys {
		id := memberID(grp, k)
		roster[id] = sAddrs[i]
	}
	for i, k := range cKeys {
		id := memberID(grp, k)
		roster[id] = cAddrs[i]
	}
	driveGroupToCertifiedRound(t, grp, sKeys, cKeys, opts)
}

// memberID finds the definition ID for a keyset by public key.
func memberID(grp *dissent.Group, k dissent.Keys) dissent.NodeID {
	g := grp.Group()
	want := string(g.Encode(k.Identity.Public))
	for _, m := range grp.Servers {
		if string(g.Encode(m.PubKey)) == want {
			return m.ID
		}
	}
	for _, m := range grp.Clients {
		if string(g.Encode(m.PubKey)) == want {
			return m.ID
		}
	}
	panic("key not in group")
}

// TestSDKClientsStartFirst pins the startup-order regression: clients
// run (and fire their pseudonym submissions) well before any server
// attaches. Early messages must buffer — at the transport for unborn
// peers and at the Node until engine.Start runs — rather than racing
// the engine into a clobbered state.
func TestSDKClientsStartFirst(t *testing.T) {
	policy := testPolicy(nil)
	sKeys, cKeys, grp := buildGroup(t, 2, 3, policy)
	net := dissent.NewSimNet()
	defer net.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, len(sKeys)+len(cKeys))
	var clients []*dissent.Node
	for _, k := range cKeys {
		n, err := dissent.NewClient(grp, k, dissent.WithTransport(net))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, n)
		go func() { runErr <- n.Run(ctx) }()
	}
	time.Sleep(200 * time.Millisecond) // client submissions are in flight
	var server0 *dissent.Node
	for _, k := range sKeys {
		n, err := dissent.NewServer(grp, k, dissent.WithTransport(net))
		if err != nil {
			t.Fatal(err)
		}
		if server0 == nil {
			server0 = n
		}
		go func() { runErr <- n.Run(ctx) }()
	}
	rounds := server0.Subscribe(dissent.EventRoundComplete)
	select {
	case _, ok := <-rounds:
		if !ok {
			t.Fatal("subscription closed early")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("no certified round: early client messages were lost or clobbered Start")
	}
	cancel()
	for i := 0; i < len(sKeys)+len(cKeys); i++ {
		if err := <-runErr; err != nil {
			t.Errorf("Run returned %v", err)
		}
	}
}

// TestSDKBeaconSessionBinding runs a beacon-enabled group, serves the
// chain over the node's beacon HTTP endpoint, and checks the external
// verifier path: SyncBeacon authenticates the schedule certificate,
// anchors at the session genesis, and a pre-session-anchored replica
// rejects the live chain.
func TestSDKBeaconSessionBinding(t *testing.T) {
	policy := testPolicy(func(p *dissent.Policy) { p.BeaconEpochRounds = 2 })
	sKeys, cKeys, grp := buildGroup(t, 2, 3, policy)
	net := dissent.NewSimNet()
	defer net.Close()
	beaconAddr := reservePort(t)
	g := startGroup(t, grp, sKeys, cKeys, func(role dissent.Role, i int) []dissent.Option {
		opts := []dissent.Option{dissent.WithTransport(net)}
		if role == dissent.RoleServer && i == 0 {
			opts = append(opts, dissent.WithBeaconHTTP(beaconAddr))
		}
		return opts
	})
	defer g.stop(t)

	chain := g.servers[0].BeaconChain()
	if chain == nil {
		t.Fatal("beacon disabled despite policy")
	}
	deadline := time.After(60 * time.Second)
	for chain.Len() < 3 {
		select {
		case <-deadline:
			t.Fatalf("beacon chain reached only %d entries", chain.Len())
		case <-time.After(20 * time.Millisecond):
		}
	}

	res, err := dissent.SyncBeacon("http://"+beaconAddr, grp)
	if err != nil {
		t.Fatalf("SyncBeacon: %v", err)
	}
	if !res.SessionBound {
		t.Fatal("sync not anchored at the session genesis")
	}
	if res.Added < 3 {
		t.Fatalf("synced only %d entries", res.Added)
	}
	if err := res.Chain.Verify(); err != nil {
		t.Fatalf("synced chain failed verification: %v", err)
	}
	if res.Chain.Genesis() == chain.Genesis() {
		// Same genesis is expected — they describe the same session.
	} else {
		t.Fatal("verifier genesis differs from the live chain's")
	}

	// Clients converged on the same session-bound chain.
	cl := g.clients[0].BeaconChain()
	if cl.Genesis() != chain.Genesis() {
		t.Fatal("client chain genesis diverged")
	}
}

// TestSDKShutdownClosesChannels checks the Run(ctx) lifecycle: cancel
// closes Messages and subscription channels and Run returns nil.
func TestSDKShutdownClosesChannels(t *testing.T) {
	policy := testPolicy(nil)
	sKeys, cKeys, grp := buildGroup(t, 2, 2, policy)
	net := dissent.NewSimNet()
	defer net.Close()
	g := startGroup(t, grp, sKeys, cKeys, func(dissent.Role, int) []dissent.Option {
		return []dissent.Option{dissent.WithTransport(net)}
	})
	node := g.clients[0]
	events := node.Subscribe()
	g.stop(t)

	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-events:
			if !ok {
				goto eventsClosed
			}
		case <-deadline:
			t.Fatal("event channel not closed after shutdown")
		}
	}
eventsClosed:
	for {
		select {
		case _, ok := <-node.Messages():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("message channel not closed after shutdown")
		}
	}
}
