package dissent

import (
	"encoding/hex"
	"errors"
	"fmt"

	"dissent/internal/beacon"
	"dissent/internal/core"
	"dissent/internal/crypto"
	"dissent/internal/group"
	"dissent/internal/transport"
)

// The SDK's vocabulary is defined as aliases over the internal
// protocol packages: applications import only this package and name
// every type through it, while the engines, group machinery, and
// beacon keep their narrow internal boundaries.
type (
	// NodeID identifies a group member (first 8 bytes of the SHA-256 of
	// its public key; self-certifying).
	NodeID = group.NodeID
	// Group is a complete group definition: static membership lists
	// plus policy. Its hash is the group's self-certifying ID.
	Group = group.Definition
	// Policy holds the group-creation-time protocol constants.
	Policy = group.Policy
	// KeyPair is a private/public keypair in one of the protocol groups.
	KeyPair = crypto.KeyPair
	// Roster maps node IDs to dialable TCP addresses.
	Roster = transport.Roster
	// Message is an opaque signed protocol message in transit between
	// members; Transport implementations carry it whole.
	Message = core.Message
	// Event is a notable protocol state transition surfaced through
	// Node.Subscribe.
	Event = core.Event
	// EventKind classifies events.
	EventKind = core.EventKind
	// RoundOutput is one decoded anonymous message: the certified
	// round it appeared in, the sender's pseudonym slot (nothing links
	// a slot to a client), and the payload bytes.
	RoundOutput = core.Delivery
	// BeaconChain is a replica of the group's randomness beacon chain.
	BeaconChain = beacon.Chain
	// BeaconEntry is one verified link of the beacon chain.
	BeaconEntry = beacon.Entry
	// BeaconStore is the persistence contract for beacon chains.
	BeaconStore = beacon.Store
	// BeaconFileStore is the append-only durable beacon store.
	BeaconFileStore = beacon.FileStore
	// RosterUpdate is one certified membership transition: admissions
	// and removals hash-chained to the previous roster version and
	// signed by every server.
	RosterUpdate = group.RosterUpdate
	// RosterMember is one admitted member inside a RosterUpdate.
	RosterMember = group.RosterMember
	// RetryPolicy tunes the engine's retransmission backoff (see
	// WithRetryPolicy).
	RetryPolicy = core.RetryPolicy
	// Interdict is the scripted-byzantine-behavior hook robustness
	// harnesses install via WithInterdict; production nodes leave it
	// unset.
	Interdict = core.Interdict
	// VectorInfo hands an Interdict.Vector hook the round's slot
	// geometry.
	VectorInfo = core.VectorInfo
	// BlameTranscript is the durable record of one closed blame
	// session, persisted per session in the state store.
	BlameTranscript = core.BlameTranscript
)

// SessionID identifies one session — one group running on a process.
// It equals the group definition's self-certifying ID and tags the
// session's frames on shared transports, so many groups can share one
// listener (see Host) with exact routing and no allocation protocol.
type SessionID [32]byte

// String renders the ID as hex.
func (s SessionID) String() string { return fmt.Sprintf("%x", s[:]) }

// MarshalText renders the ID as hex for JSON/metrics output.
func (s SessionID) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the hex rendering, so metrics and debug
// snapshots round-trip through JSON.
func (s *SessionID) UnmarshalText(b []byte) error {
	if hex.DecodedLen(len(b)) != len(s) {
		return fmt.Errorf("dissent: session ID must be %d hex characters", hex.EncodedLen(len(s)))
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// GroupSessionID returns the session ID under which a group's members
// run: the group's self-certifying ID.
func GroupSessionID(def *Group) SessionID { return SessionID(def.GroupID()) }

// Event kinds, re-exported for Subscribe filters.
const (
	// EventScheduleReady fires when the slot schedule is established.
	EventScheduleReady = core.EventScheduleReady
	// EventRoundComplete fires at a server when a round certifies.
	EventRoundComplete = core.EventRoundComplete
	// EventRoundFailed fires when a round hits the hard timeout.
	EventRoundFailed = core.EventRoundFailed
	// EventDisruptionDetected fires at a client whose slot was garbled.
	EventDisruptionDetected = core.EventDisruptionDetected
	// EventBlameStarted fires when an accusation shuffle begins.
	EventBlameStarted = core.EventBlameStarted
	// EventBlameVerdict fires when tracing identifies a disruptor.
	EventBlameVerdict = core.EventBlameVerdict
	// EventProtocolViolation fires when a signed message or proof fails
	// verification.
	EventProtocolViolation = core.EventProtocolViolation
	// EventWindowClosed fires at a server when it closes a round's
	// submission window.
	EventWindowClosed = core.EventWindowClosed
	// EventEpochRotated fires when a node re-derives the slot
	// permutation from the randomness beacon at an epoch boundary.
	EventEpochRotated = core.EventEpochRotated
	// EventMemberJoined fires when a certified roster update admits a
	// member (new joiner or re-admitted expellee); Event.Culprit carries
	// the member's ID.
	EventMemberJoined = core.EventMemberJoined
	// EventMemberExpelled fires when a member is expelled — by blame
	// verdict or certified removal; Event.Culprit carries its ID.
	EventMemberExpelled = core.EventMemberExpelled
	// EventRosterChanged fires when a certified roster update is
	// applied; Event.Detail carries the new version.
	EventRosterChanged = core.EventRosterChanged
	// EventStateRestored fires when a restarted server resumes a live
	// session from its durable state store.
	EventStateRestored = core.EventStateRestored
	// EventReplicaResynced fires when a client replaces its diverged
	// schedule replica with a certified snapshot from a server.
	EventReplicaResynced = core.EventReplicaResynced
	// EventMisbehavior fires when ingress validation attributes a
	// protocol offense to a verified sender; Event.Culprit carries the
	// offender and Event.Detail is "<kind>: <cause>" with kind one of
	// bad-signature, malformed, equivocation, bad-certificate,
	// withholding, replay, flood, or escalated (the offender crossed
	// the removal threshold).
	EventMisbehavior = core.EventMisbehavior
)

// DefaultPolicy returns the policy used in the paper's evaluation.
func DefaultPolicy() Policy { return group.DefaultPolicy() }

// Keys holds one member's private keys. Every member has an identity
// keypair (P-256); servers additionally hold a keypair in the
// message-shuffle group named by the policy.
type Keys struct {
	Identity   *KeyPair
	MsgShuffle *KeyPair // servers only
}

// GenerateServerKeys creates fresh server keys for a group using the
// given policy's message-shuffle group.
func GenerateServerKeys(policy Policy) (Keys, error) {
	mg, err := crypto.GroupByName(policy.MessageGroup)
	if err != nil {
		return Keys{}, err
	}
	kp, err := crypto.GenerateKeyPair(crypto.P256(), nil)
	if err != nil {
		return Keys{}, err
	}
	mkp, err := crypto.GenerateKeyPair(mg, nil)
	if err != nil {
		return Keys{}, err
	}
	return Keys{Identity: kp, MsgShuffle: mkp}, nil
}

// GenerateClientKeys creates a fresh client identity keypair.
func GenerateClientKeys() (Keys, error) {
	kp, err := crypto.GenerateKeyPair(crypto.P256(), nil)
	if err != nil {
		return Keys{}, err
	}
	return Keys{Identity: kp}, nil
}

// NewGroup assembles a group definition from member keys. Only public
// keys enter the definition; the Keys values stay with their owners.
// Members are sorted by ID internally, so positions in the input
// slices need not match definition indices — nodes locate themselves
// by key.
func NewGroup(name string, serverKeys, clientKeys []Keys, policy Policy) (*Group, error) {
	sPubs := make([]crypto.Element, len(serverKeys))
	sMsgPubs := make([]crypto.Element, len(serverKeys))
	for i, k := range serverKeys {
		if k.Identity == nil || k.MsgShuffle == nil {
			return nil, fmt.Errorf("dissent: server keys %d incomplete (need Identity and MsgShuffle)", i)
		}
		sPubs[i] = k.Identity.Public
		sMsgPubs[i] = k.MsgShuffle.Public
	}
	cPubs := make([]crypto.Element, len(clientKeys))
	for i, k := range clientKeys {
		if k.Identity == nil {
			return nil, errors.New("dissent: client keys lack an identity keypair")
		}
		cPubs[i] = k.Identity.Public
	}
	return group.NewDefinition(name, sPubs, sMsgPubs, cPubs, policy)
}
